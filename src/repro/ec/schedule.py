"""XOR schedule compilation for bitmatrix (Cauchy RS) encoding.

A parity bitmatrix row says which data bit-planes XOR together to form one
parity bit-plane.  A *schedule* makes that explicit as a list of operations
so the encoder's hot loop is just "XOR these strips into that strip", with
no matrix inspection.

Three compilers are provided:

* :func:`dumb_schedule` — each parity strip computed independently from data
  strips (``popcount - 1`` XORs per strip).
* :func:`smart_schedule` — a greedy derivation reuse: a parity strip may be
  computed as a previously produced parity strip XOR a (hopefully small)
  correction, the classic optimisation from the Jerasure/Plank line of work.
  The ablation benchmark measures the XOR-count reduction.
* :func:`paar_schedule` — greedy pairwise common-subexpression elimination
  (Paar's algorithm for GF(2) matrices): the most frequent source pair
  across all rows becomes a temp strip, rows substitute the temp, repeat.
  Cuts the (12, 4, 8) good-matrix schedule from 1556 dumb / 1231 smart
  XORs to ~900 at the default temp budget, at the cost of extra workspace
  rows for the temps.

Strip numbering: data strips are ``0 .. k*w - 1``; parity strip ``r`` is
``k*w + r``; temp strip ``t`` (Paar schedules only) is ``(k + m)*w + t``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.errors import CodeConfigError
from repro.ec.kernels import (
    CompiledOp,
    padded_row_bytes,
    run_compiled_ops,
    schedule_workspace_rows,
)


@dataclass(frozen=True)
class XorOp:
    """One scheduled operation: produce parity (or temp) strip ``dest``.

    Attributes:
        dest: global strip index of the strip being produced.
        base: strip to copy as the starting value (data, earlier parity,
            or temp), or ``None`` to start from zero.
        sources: strips XORed into the destination after the base copy.
    """

    dest: int
    base: int | None
    sources: tuple[int, ...]

    @property
    def xor_count(self) -> int:
        """Number of buffer-sized XOR operations this op performs."""
        return len(self.sources)


@dataclass
class XorSchedule:
    """A compiled encoding plan for one parity bitmatrix."""

    k: int
    m: int
    w: int
    ops: list[XorOp] = field(default_factory=list)
    n_temps: int = 0
    _compiled: list[CompiledOp] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def total_xors(self) -> int:
        """Total strip-sized XORs across the whole schedule."""
        return sum(op.xor_count for op in self.ops)

    def compiled_ops(self) -> list[CompiledOp]:
        """The ops lowered for the kernel executor, compiled once.

        Each entry is ``(dest, sources)`` with the base (if any) folded in
        as the first source and ``sources`` an index array, so the hot loop
        fancy-indexes the workspace instead of iterating Python tuples and
        never needs a separate copy/zero prologue.
        """
        if self._compiled is None:
            merged = [
                (
                    op.dest,
                    np.asarray(
                        ((op.base,) if op.base is not None else ()) + op.sources,
                        dtype=np.intp,
                    ),
                )
                for op in self.ops
            ]
            self._compiled = _batch_binary_runs(merged)
        return self._compiled

    def apply(self, data_strips: list[np.ndarray]) -> list[np.ndarray]:
        """Execute the schedule on concrete data strips.

        Strips are staged into one ``(n_strips, row)`` workspace whose rows
        are padded to whole uint64 words, so every XOR runs word-packed
        (see :mod:`repro.ec.kernels`).

        Args:
            data_strips: ``k * w`` equal-size uint8 arrays.

        Returns:
            ``m * w`` parity strips in row order.
        """
        if len(data_strips) != self.k * self.w:
            raise CodeConfigError(
                f"expected {self.k * self.w} data strips, got {len(data_strips)}"
            )
        n_data = self.k * self.w
        strip = data_strips[0].size
        ops = self.compiled_ops()
        n_rows = schedule_workspace_rows(ops, n_data + self.m * self.w)
        work = np.zeros((n_rows, padded_row_bytes(strip)), dtype=np.uint8)
        for i, s in enumerate(data_strips):
            work[i, :strip] = s
        run_compiled_ops(work.view(np.uint64), ops)
        return [work[n_data + r, :strip].copy() for r in range(self.m * self.w)]


def _batch_binary_runs(merged: list[tuple[int, np.ndarray]]) -> list[CompiledOp]:
    """Fuse runs of independent two-source ops into single batched ops.

    A run of consecutive ops whose destinations are contiguous rows, each
    XOR of exactly two sources, none of which is a destination written
    earlier in the same run, becomes one ``(slice, [A, B])`` op — one
    gather-XOR ufunc call per run instead of one per op.  Paar schedules
    number their temps level-major precisely so these runs appear.
    """
    batched: list[CompiledOp] = []
    run: list[tuple[int, np.ndarray]] = []

    def flush() -> None:
        if len(run) >= 2:
            batched.append(
                (
                    slice(run[0][0], run[-1][0] + 1),
                    [
                        np.asarray([srcs[0] for _, srcs in run], dtype=np.intp),
                        np.asarray([srcs[1] for _, srcs in run], dtype=np.intp),
                    ],
                )
            )
        else:
            batched.extend(run)
        run.clear()

    run_dests: set[int] = set()
    for dest, srcs in merged:
        extends = (
            srcs.size == 2
            and (not run or dest == run[-1][0] + 1)
            and int(srcs[0]) not in run_dests
            and int(srcs[1]) not in run_dests
        )
        if not extends:
            flush()
            run_dests.clear()
        if srcs.size == 2:
            run.append((dest, srcs))
            run_dests.add(dest)
        else:
            batched.append((dest, srcs))
    flush()
    return batched


def dumb_schedule(parity_bitmatrix: np.ndarray, k: int, m: int, w: int) -> XorSchedule:
    """Compile each parity strip independently from data strips."""
    bm = np.asarray(parity_bitmatrix, dtype=np.uint8)
    _validate_bitmatrix(bm, k, m, w)
    n_data = k * w
    schedule = XorSchedule(k=k, m=m, w=w)
    for r in range(m * w):
        cols = [int(c) for c in np.nonzero(bm[r])[0]]
        if not cols:
            schedule.ops.append(XorOp(dest=n_data + r, base=None, sources=()))
            continue
        schedule.ops.append(
            XorOp(dest=n_data + r, base=cols[0], sources=tuple(cols[1:]))
        )
    return schedule


def smart_schedule(parity_bitmatrix: np.ndarray, k: int, m: int, w: int) -> XorSchedule:
    """Compile with greedy reuse of already-produced parity strips.

    For each parity row (in a greedily chosen order), pick the cheaper of
    (a) computing it from data strips directly, or (b) starting from the
    closest previously produced parity row and XORing in the Hamming
    difference.  This mirrors the derivation-reuse trick in optimised CRS
    implementations; it never changes the output bytes, only the XOR count.
    """
    bm = np.asarray(parity_bitmatrix, dtype=np.uint8)
    _validate_bitmatrix(bm, k, m, w)
    n_data = k * w
    rows = bm.astype(bool)
    n_rows = m * w
    remaining = set(range(n_rows))
    done: list[int] = []
    schedule = XorSchedule(k=k, m=m, w=w)

    while remaining:
        best: tuple[int, int, int | None] | None = None  # (cost, row, base_row)
        for r in remaining:
            direct = max(int(rows[r].sum()) - 1, 0)
            cost, base = direct, None
            for d in done:
                delta = int(np.count_nonzero(rows[r] ^ rows[d]))
                if delta < cost:
                    cost, base = delta, d
            if best is None or cost < best[0]:
                best = (cost, r, base)
        assert best is not None
        _, r, base_row = best
        cols = [int(c) for c in np.nonzero(rows[r])[0]]
        if base_row is None:
            if cols:
                op = XorOp(dest=n_data + r, base=cols[0], sources=tuple(cols[1:]))
            else:
                op = XorOp(dest=n_data + r, base=None, sources=())
        else:
            delta_cols = [
                int(c) for c in np.nonzero(rows[r] ^ rows[base_row])[0]
            ]
            op = XorOp(
                dest=n_data + r, base=n_data + base_row, sources=tuple(delta_cols)
            )
        schedule.ops.append(op)
        remaining.remove(r)
        done.append(r)
    return schedule


def paar_schedule(
    parity_bitmatrix: np.ndarray,
    k: int,
    m: int,
    w: int,
    max_temps: int = 64,
    min_occurrence: int = 3,
) -> XorSchedule:
    """Compile with greedy pairwise common-subexpression elimination.

    Paar's algorithm for GF(2) constant-matrix multiplication: repeatedly
    find the pair of source strips that co-occurs in the most rows, compute
    it once into a temp strip, and substitute the temp everywhere.  Temps
    may themselves pair with data strips or other temps, so the elimination
    compounds.  ``max_temps`` bounds the extra workspace rows (temps live
    past the parity strips and cost one row of L2 each in the chunked
    executor — more temps means fewer XORs but a bigger working set, and
    the end-to-end optimum is well below the XOR-count optimum);
    ``min_occurrence`` stops when sharing no longer pays.

    Like the other compilers this never changes the output bytes, only the
    op list.  The result is memoised per code shape by
    :func:`repro.ec.cauchy.cached_schedule`, so compile cost is one-time.
    """
    bm = np.asarray(parity_bitmatrix, dtype=np.uint8)
    _validate_bitmatrix(bm, k, m, w)
    n_data = k * w
    n_parity = m * w
    rows: list[set[int]] = [
        {int(c) for c in np.nonzero(bm[r])[0]} for r in range(n_parity)
    ]
    temp_defs: list[tuple[int, int]] = []  # temp t = defs[t][0] ^ defs[t][1]
    first_temp = n_data + n_parity
    while len(temp_defs) < max_temps:
        pair_counts: Counter[tuple[int, int]] = Counter()
        for row in rows:
            members = sorted(row)
            for i, a in enumerate(members):
                for b in members[i + 1 :]:
                    pair_counts[(a, b)] += 1
        if not pair_counts:
            break
        (a, b), count = pair_counts.most_common(1)[0]
        if count < min_occurrence:
            break
        temp_id = first_temp + len(temp_defs)
        temp_defs.append((a, b))
        for row in rows:
            if a in row and b in row:
                row.discard(a)
                row.discard(b)
                row.add(temp_id)
    # Renumber temps level-major (a temp's level is one past its deepest
    # temp operand).  Each level is a run of independent ops on contiguous
    # rows, which compiled_ops() fuses into one gather-XOR call per level.
    levels = [0] * len(temp_defs)
    for t, (a, b) in enumerate(temp_defs):
        lv = 0
        for operand in (a, b):
            if operand >= first_temp:
                lv = max(lv, levels[operand - first_temp] + 1)
        levels[t] = lv
    order = sorted(range(len(temp_defs)), key=lambda t: (levels[t], t))
    renumber = {
        first_temp + old: first_temp + new for new, old in enumerate(order)
    }

    def remap(strip_id: int) -> int:
        return renumber.get(strip_id, strip_id)

    schedule = XorSchedule(k=k, m=m, w=w, n_temps=len(temp_defs))
    for old in order:
        a, b = temp_defs[old]
        schedule.ops.append(
            XorOp(dest=remap(first_temp + old), base=remap(a), sources=(remap(b),))
        )
    for r in range(n_parity):
        cols = sorted(remap(c) for c in rows[r])
        if cols:
            op = XorOp(dest=n_data + r, base=cols[0], sources=tuple(cols[1:]))
        else:
            op = XorOp(dest=n_data + r, base=None, sources=())
        schedule.ops.append(op)
    return schedule


def _validate_bitmatrix(bm: np.ndarray, k: int, m: int, w: int) -> None:
    expected = (m * w, k * w)
    if bm.shape != expected:
        raise CodeConfigError(
            f"parity bitmatrix shape {bm.shape} != expected {expected}"
        )

"""Cauchy Reed-Solomon code — the coding scheme ECCheck adopts.

A Cauchy matrix ``C[i][j] = 1 / (x_i + y_j)`` over GF(2^w) (with all
``x_i``, ``y_j`` distinct) has the property that every square submatrix is
invertible, so ``[I; C]`` is the generator of an MDS code.  Projected to a
GF(2) bitmatrix (:mod:`repro.gf.bitmatrix`), encoding becomes XOR-only,
which is what lets ECCheck encode checkpoints on CPU without slowing GPU
training.

This module provides both paths:

* the field-arithmetic path inherited from :class:`~repro.ec.base.ErasureCode`
  (used as a cross-check and for decoding), and
* :meth:`CauchyRSCode.encode_bitmatrix`, the XOR-only path driven by a
  compiled :class:`~repro.ec.schedule.XorSchedule`.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.errors import CodeConfigError
from repro.ec.base import CodeParams, ErasureCode
from repro.ec.kernels import (
    DEFAULT_CHUNK_BYTES,
    apply_schedule_blocks,
    decompose_into,
    padded_row_bytes,
    recompose_into,
    strip_bytes_for,
)
from repro.ec.schedule import (
    XorSchedule,
    dumb_schedule,
    paar_schedule,
    smart_schedule,
)
from repro.gf.bitmatrix import bitmatrix_from_matrix
from repro.gf.field import GF

# ----------------------------------------------------------------------
# Compile-once caches.  A code's parity bitmatrix and its compiled XOR
# schedule are functions of (k, m, w, good_matrix) alone, so every
# CauchyRSCode instance with the same shape shares one compilation —
# checkpoint engines create fresh codes per job, and without these caches
# each one re-ran the Jerasure-style matrix/schedule construction.
# ----------------------------------------------------------------------
_PARITY_BITMATRIX_CACHE: dict[tuple[int, int, int, bool], np.ndarray] = {}
_SCHEDULE_CACHE: dict[tuple[int, int, int, bool, str], XorSchedule] = {}
_CACHE_STATS = {
    "bitmatrix_hits": 0,
    "bitmatrix_misses": 0,
    "schedule_hits": 0,
    "schedule_misses": 0,
}


def cached_parity_bitmatrix(code: "CauchyRSCode") -> np.ndarray:
    """The code's parity bitmatrix, memoised per (k, m, w, good_matrix)."""
    p = code.params
    key = (p.k, p.m, p.w, code.good_matrix)
    bm = _PARITY_BITMATRIX_CACHE.get(key)
    if bm is None:
        _CACHE_STATS["bitmatrix_misses"] += 1
        bm = bitmatrix_from_matrix(code.parity_matrix, code.field)
        bm.setflags(write=False)
        _PARITY_BITMATRIX_CACHE[key] = bm
    else:
        _CACHE_STATS["bitmatrix_hits"] += 1
    return bm


def cached_schedule(code: "CauchyRSCode", kind: str = "smart") -> XorSchedule:
    """A compiled encode schedule, memoised per (k, m, w, good_matrix, kind)."""
    p = code.params
    key = (p.k, p.m, p.w, code.good_matrix, kind)
    schedule = _SCHEDULE_CACHE.get(key)
    if schedule is None:
        _CACHE_STATS["schedule_misses"] += 1
        compilers = {
            "paar": paar_schedule,
            "smart": smart_schedule,
            "dumb": dumb_schedule,
        }
        compiler = compilers[kind]
        schedule = compiler(cached_parity_bitmatrix(code), p.k, p.m, p.w)
        _SCHEDULE_CACHE[key] = schedule
    else:
        _CACHE_STATS["schedule_hits"] += 1
    return schedule


def schedule_cache_info() -> dict[str, int]:
    """Hit/miss counters of the module-level compile caches."""
    return dict(
        _CACHE_STATS,
        bitmatrix_entries=len(_PARITY_BITMATRIX_CACHE),
        schedule_entries=len(_SCHEDULE_CACHE),
    )


def build_cauchy_matrix(k: int, m: int, field: GF) -> np.ndarray:
    """Build an ``m x k`` Cauchy matrix over GF(2^w).

    Uses ``x_i = i`` for parity rows and ``y_j = m + j`` for data columns,
    the same convention as Jerasure's ``cauchy_original_coding_matrix``.

    Raises:
        CodeConfigError: if ``k + m`` exceeds the field size.
    """
    if k + m > field.size:
        raise CodeConfigError(
            f"k + m = {k + m} exceeds field size 2^{field.w} = {field.size}"
        )
    out = np.zeros((m, k), dtype=np.uint32)
    for i in range(m):
        for j in range(k):
            out[i, j] = field.inv(i ^ (m + j))
    return out


def bitmatrix_ones(mat: np.ndarray, field: GF) -> int:
    """Number of 1-bits in a matrix's bitmatrix expansion.

    Each 1 is one XOR in naive bitmatrix encoding, so this is the encoding
    cost the "good" matrix construction minimises.
    """
    return int(bitmatrix_from_matrix(mat, field).sum())


def build_cauchy_good_matrix(k: int, m: int, field: GF) -> np.ndarray:
    """Jerasure's ``cauchy_good_general_coding_matrix`` construction.

    Scaling a row (or column) of a Cauchy matrix by a non-zero constant
    preserves the any-square-submatrix-invertible property, but changes
    how many 1-bits its bitmatrix expansion has — i.e. how many XORs
    encoding costs.  This construction divides every column by its first
    entry (making row 0 all ones: zero-cost XOR copies), then greedily
    rescales each remaining row by the divisor minimising that row's
    bitmatrix ones.
    """
    cauchy = build_cauchy_matrix(k, m, field)
    good = cauchy.copy()
    # Column scaling: make row 0 all ones.
    for j in range(k):
        inv = field.inv(int(good[0, j]))
        for i in range(m):
            good[i, j] = field.mul(int(good[i, j]), inv)
    # Row scaling: greedily minimise each row's bit count.
    for i in range(1, m):
        row = good[i].copy()
        best_row, best_ones = row, bitmatrix_ones(row[None, :], field)
        for divisor in row:
            divisor = int(divisor)
            if divisor in (0, 1):
                continue
            scaled = np.array(
                [field.div(int(v), divisor) for v in row], dtype=np.uint32
            )
            ones = bitmatrix_ones(scaled[None, :], field)
            if ones < best_ones:
                best_row, best_ones = scaled, ones
        good[i] = best_row
    return good


class CauchyRSCode(ErasureCode):
    """Systematic Cauchy Reed-Solomon code over GF(2^w).

    Args:
        params: the (k, m, w) code shape.
        good_matrix: use the XOR-minimised "good" Cauchy construction
            instead of the original one (default False so the paper's
            baseline numbers stay unchanged; ablations flip it).

    Example:
        >>> code = CauchyRSCode(CodeParams(k=2, m=2, w=8))
        >>> data = [np.frombuffer(b"abcdefgh", dtype=np.uint8).copy(),
        ...         np.frombuffer(b"ijklmnop", dtype=np.uint8).copy()]
        >>> parity = code.encode(data)
        >>> recovered = code.decode({2: parity[0], 3: parity[1]})
        >>> bytes(recovered[0]), bytes(recovered[1])
        (b'abcdefgh', b'ijklmnop')
    """

    #: Compiled decode schedules kept per survivor-id tuple (alongside the
    #: base class's decoding-matrix cache): real recoveries decode the same
    #: survivor set for every reduction group in a failure event.
    DECODE_SCHEDULE_CACHE_SIZE = 64

    def __init__(self, params: CodeParams, good_matrix: bool = False):
        super().__init__(params)
        self.good_matrix = good_matrix
        self._decode_schedule_cache: OrderedDict[tuple[int, ...], XorSchedule] = (
            OrderedDict()
        )
        self._decode_schedule_hits = 0
        self._decode_schedule_misses = 0

    def build_generator(self) -> np.ndarray:
        k, m = self.params.k, self.params.m
        gen = np.zeros((k + m, k), dtype=np.uint32)
        gen[:k] = np.eye(k, dtype=np.uint32)
        if m:
            builder = build_cauchy_good_matrix if self.good_matrix else build_cauchy_matrix
            gen[k:] = builder(k, m, self.field)
        return gen

    @property
    def parity_bitmatrix(self) -> np.ndarray:
        """GF(2) bitmatrix of the parity block: ``(m*w) x (k*w)`` of 0/1.

        Shared across instances via the module cache (read-only array).
        """
        return cached_parity_bitmatrix(self)

    # ------------------------------------------------------------------
    # Fast XOR-only paths (word-packed kernels, cached schedules)
    # ------------------------------------------------------------------
    def encode_bitmatrix(
        self,
        data_blocks: list[np.ndarray],
        chunk_bytes: int | None = None,
    ) -> list[np.ndarray]:
        """Encode with XOR operations only, via the parity bitmatrix.

        The compiled (and cached) smart schedule is executed by the
        cache-blocked word-packed kernels in :mod:`repro.ec.kernels`.
        Produces byte-identical output to :meth:`encode` (the field path) —
        tests assert this equivalence.

        Raises:
            CodeConfigError: if block sizes are not divisible by ``w``.
        """
        blocks = self._check_blocks(data_blocks)
        w = self.params.w
        size = blocks[0].nbytes
        if size % w:
            raise CodeConfigError(
                f"bitmatrix encoding needs block size divisible by w={w}, got {size}"
            )
        if not self.params.m:
            return []
        out = [np.empty(size, dtype=np.uint8) for _ in range(self.params.m)]
        self.encode_bitmatrix_into(blocks, out, chunk_bytes=chunk_bytes)
        return out

    def encode_bitmatrix_into(
        self,
        blocks: list[np.ndarray],
        out_blocks: list[np.ndarray],
        chunk_bytes: int | None = None,
    ) -> None:
        """Encode ``blocks`` writing parity bytes directly into ``out_blocks``.

        The zero-copy entry point used by the pool encoders: callers pass
        ``m`` preallocated uint8 arrays *or views* (e.g. sub-range slices
        of full parity blocks) the same size as the data blocks.  Inputs
        must be contiguous uint8 arrays of equal size divisible by ``w``;
        no validation copies are made here.

        Schedule kind, decompose kernel and chunk blocking come from the
        autotuner's winner table for this ``(k, m, w, size)`` (default
        Paar/pack/64K on a cache miss); every variant is byte-identical,
        so tuning only moves wall time.  An explicit ``chunk_bytes``
        overrides the tuned blocking (benchmarks pin it for comparability).
        """
        from repro.ec.autotune import best_variant

        variant = best_variant(self, blocks[0].nbytes)
        ops = cached_schedule(self, variant.schedule_kind).compiled_ops()
        apply_schedule_blocks(
            ops,
            blocks,
            out_blocks,
            self.params.w,
            variant.chunk_bytes if chunk_bytes is None else chunk_bytes,
            variant.decompose_kind,
        )

    def encode_bitmatrix_reference(
        self, data_blocks: list[np.ndarray]
    ) -> list[np.ndarray]:
        """The pre-kernel bitmatrix encoder, kept as a benchmark baseline.

        Walks the parity bitmatrix row by row, XORing full-size strips with
        one numpy call per 1-bit — no schedule, no word packing, no cache
        blocking.  ``benchmarks/bench_encode_throughput.py`` reports the
        fast path's speedup against this implementation.
        """
        blocks = self._check_blocks(data_blocks)
        w = self.params.w
        size = blocks[0].nbytes
        if size % w:
            raise CodeConfigError(
                f"bitmatrix encoding needs block size divisible by w={w}, got {size}"
            )
        data_strips = _reference_blocks_to_bitplanes(blocks, w)
        bm = self.parity_bitmatrix
        parity_strips = []
        for r in range(self.params.m * w):
            acc = np.zeros(data_strips[0].shape, dtype=np.uint8)
            for c in np.nonzero(bm[r])[0]:
                np.bitwise_xor(acc, data_strips[int(c)], out=acc)
            parity_strips.append(acc)
        return _reference_bitplanes_to_blocks(parity_strips, self.params.m, w, size)

    def _decode_schedule(self, ids: tuple[int, ...]) -> XorSchedule:
        """Compiled XOR schedule for decoding from survivor set ``ids``.

        LRU-cached per survivor tuple: the decoding bitmatrix expansion and
        schedule compilation run once per distinct failure pattern instead
        of once per reduction group.
        """
        schedule = self._decode_schedule_cache.get(ids)
        if schedule is not None:
            self._decode_schedule_hits += 1
            self._decode_schedule_cache.move_to_end(ids)
            return schedule
        self._decode_schedule_misses += 1
        matrix = self.decoding_matrix(list(ids))
        bm = bitmatrix_from_matrix(matrix, self.field)
        k, w = self.params.k, self.params.w
        schedule = dumb_schedule(bm, k, k, w)
        self._decode_schedule_cache[ids] = schedule
        if len(self._decode_schedule_cache) > self.DECODE_SCHEDULE_CACHE_SIZE:
            self._decode_schedule_cache.popitem(last=False)
        return schedule

    def decode_cache_info(self) -> dict[str, int]:
        """Hit/miss/size counters of the decode-schedule LRU cache."""
        return {
            "hits": self._decode_schedule_hits,
            "misses": self._decode_schedule_misses,
            "size": len(self._decode_schedule_cache),
            "max_size": self.DECODE_SCHEDULE_CACHE_SIZE,
        }

    def decode_bitmatrix(
        self,
        available: dict[int, np.ndarray],
        chunk_bytes: int | None = None,
    ) -> list[np.ndarray]:
        """Decode with XOR operations only.

        The ``k x k`` decoding matrix (inverse of the surviving generator
        rows) is expanded to its GF(2) bitmatrix and compiled to a cached
        XOR schedule, so reconstruction — like encoding — runs through the
        word-packed kernels.  Byte-identical to :meth:`decode`.

        Cache blocking comes from the autotuner's *decode* winner table
        for this shape (the decoding bitmatrix is denser than the parity
        bitmatrix, so the encode winner's chunk size is not reused); an
        explicit ``chunk_bytes`` pins it for benchmarks.

        Raises:
            DecodeError: with fewer than ``k`` chunks.
            CodeConfigError: if block sizes are not divisible by ``w``.
        """
        from repro.errors import DecodeError

        k, w = self.params.k, self.params.w
        if len(available) < k:
            raise DecodeError(f"need {k} chunks to decode, got {len(available)}")
        ids = sorted(available, key=lambda i: (i >= k, i))[:k]
        blocks = [
            np.ascontiguousarray(available[i], dtype=np.uint8).ravel() for i in ids
        ]
        size = blocks[0].nbytes
        if size % w:
            raise CodeConfigError(
                f"bitmatrix decoding needs block size divisible by w={w}, got {size}"
            )
        if chunk_bytes is None:
            from repro.ec.autotune import best_decode_chunk

            chunk_bytes = best_decode_chunk(self, size)
        schedule = self._decode_schedule(tuple(ids))
        out = [np.empty(size, dtype=np.uint8) for _ in range(k)]
        apply_schedule_blocks(schedule.compiled_ops(), blocks, out, w, chunk_bytes)
        return out

    def decode_bitmatrix_reference(
        self, available: dict[int, np.ndarray]
    ) -> list[np.ndarray]:
        """The pre-kernel bitmatrix decoder, kept as a benchmark baseline.

        Re-expands the decoding bitmatrix on every call and XORs full-size
        strips row by row — the cost profile the schedule cache and the
        word-packed kernels remove.
        """
        from repro.errors import DecodeError

        k, w = self.params.k, self.params.w
        if len(available) < k:
            raise DecodeError(f"need {k} chunks to decode, got {len(available)}")
        ids = sorted(available, key=lambda i: (i >= k, i))[:k]
        matrix = self.decoding_matrix(ids)
        bm = bitmatrix_from_matrix(matrix, self.field)
        blocks = [
            np.ascontiguousarray(available[i], dtype=np.uint8).ravel() for i in ids
        ]
        size = blocks[0].nbytes
        if size % w:
            raise CodeConfigError(
                f"bitmatrix decoding needs block size divisible by w={w}, got {size}"
            )
        strips = _reference_blocks_to_bitplanes(blocks, w)
        out_strips = []
        for r in range(k * w):
            acc = np.zeros(strips[0].shape, dtype=np.uint8)
            for c in np.nonzero(bm[r])[0]:
                np.bitwise_xor(acc, strips[int(c)], out=acc)
            out_strips.append(acc)
        return _reference_bitplanes_to_blocks(out_strips, k, w, size)

    # ------------------------------------------------------------------
    # Fast-path dispatch (see ErasureCode.encode_fast / decode_fast)
    # ------------------------------------------------------------------
    def encode_fast(self, data_blocks: list[np.ndarray]) -> list[np.ndarray]:
        """Bitmatrix kernels when the block size allows, else field path."""
        blocks = self._check_blocks(data_blocks)
        if self.params.m and blocks[0].nbytes % self.params.w == 0:
            return self.encode_bitmatrix(blocks)
        return self.encode(blocks)

    def decode_fast(self, available: dict[int, np.ndarray]) -> list[np.ndarray]:
        """Bitmatrix kernels when the block size allows, else field path."""
        if len(available) >= self.params.k and available:
            sizes = {np.asarray(b).nbytes for b in available.values()}
            if len(sizes) == 1 and sizes.pop() % self.params.w == 0:
                return self.decode_bitmatrix(available)
        return self.decode(available)


def _blocks_to_bitplanes(blocks: list[np.ndarray], w: int) -> list[np.ndarray]:
    """Split each block into ``w`` bit-plane strips.

    Jerasure's packed layout stores bit-plane ``i`` of a block as the bytes
    ``block[i*strip : (i+1)*strip]`` where consecutive words are interleaved
    across strips.  We use the simpler "column" layout: word ``t`` of the
    block contributes bit ``i`` to position ``t`` of strip ``i``.  Strips are
    packed back into bytes so XOR stays byte-wise.

    Implemented on the vectorised kernels (mask + ``packbits``); layout is
    byte-identical to the historical per-plane shift loop.
    """
    out: list[np.ndarray] = []
    for block in blocks:
        block = np.ascontiguousarray(block, dtype=np.uint8).ravel()
        strip = strip_bytes_for(block.size, w)
        rows = np.empty((w, strip), dtype=np.uint8)
        decompose_into(block, w, rows)
        out.extend(rows[i] for i in range(w))
    return out


def _bitplanes_to_blocks(
    strips: list[np.ndarray], count: int, w: int, size: int
) -> list[np.ndarray]:
    """Inverse of :func:`_blocks_to_bitplanes` for ``count`` output blocks."""
    out: list[np.ndarray] = []
    for b in range(count):
        rows = np.stack(
            [np.ascontiguousarray(s, dtype=np.uint8) for s in strips[b * w : (b + 1) * w]]
        )
        block = np.empty(size, dtype=np.uint8)
        recompose_into(rows, w, block)
        out.append(block)
    return out


def _reference_blocks_to_bitplanes(blocks: list[np.ndarray], w: int) -> list[np.ndarray]:
    """Pre-kernel bit-plane split (per-plane shift/compare loop).

    Kept verbatim so :meth:`CauchyRSCode.encode_bitmatrix_reference` remains
    an honest pre-optimisation baseline for the throughput benchmark.
    """
    out: list[np.ndarray] = []
    for block in blocks:
        if w == 8:
            words = block
        elif w == 16:
            words = block.view(np.uint16)
        elif w in (1, 2, 4):
            words = block & ((1 << w) - 1)
        else:
            raise CodeConfigError(f"unsupported w={w} for bitplanes")
        for i in range(w):
            bits = ((words >> i) & 1).astype(np.uint8)
            out.append(np.packbits(bits))
    return out


def _reference_bitplanes_to_blocks(
    strips: list[np.ndarray], count: int, w: int, size: int
) -> list[np.ndarray]:
    """Pre-kernel inverse of :func:`_reference_blocks_to_bitplanes`."""
    if w == 8:
        n_words, dtype = size, np.uint8
    elif w == 16:
        n_words, dtype = size // 2, np.uint16
    else:
        n_words, dtype = size, np.uint8
    out: list[np.ndarray] = []
    for b in range(count):
        words = np.zeros(n_words, dtype=np.uint32)
        for i in range(w):
            bits = np.unpackbits(strips[b * w + i])[:n_words]
            words |= bits.astype(np.uint32) << i
        block = words.astype(dtype)
        out.append(block.view(np.uint8).reshape(-1)[:size].copy())
    return out

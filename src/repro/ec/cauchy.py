"""Cauchy Reed-Solomon code — the coding scheme ECCheck adopts.

A Cauchy matrix ``C[i][j] = 1 / (x_i + y_j)`` over GF(2^w) (with all
``x_i``, ``y_j`` distinct) has the property that every square submatrix is
invertible, so ``[I; C]`` is the generator of an MDS code.  Projected to a
GF(2) bitmatrix (:mod:`repro.gf.bitmatrix`), encoding becomes XOR-only,
which is what lets ECCheck encode checkpoints on CPU without slowing GPU
training.

This module provides both paths:

* the field-arithmetic path inherited from :class:`~repro.ec.base.ErasureCode`
  (used as a cross-check and for decoding), and
* :meth:`CauchyRSCode.encode_bitmatrix`, the XOR-only path driven by a
  compiled :class:`~repro.ec.schedule.XorSchedule`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CodeConfigError
from repro.ec.base import CodeParams, ErasureCode
from repro.gf.bitmatrix import bitmatrix_from_matrix
from repro.gf.field import GF


def build_cauchy_matrix(k: int, m: int, field: GF) -> np.ndarray:
    """Build an ``m x k`` Cauchy matrix over GF(2^w).

    Uses ``x_i = i`` for parity rows and ``y_j = m + j`` for data columns,
    the same convention as Jerasure's ``cauchy_original_coding_matrix``.

    Raises:
        CodeConfigError: if ``k + m`` exceeds the field size.
    """
    if k + m > field.size:
        raise CodeConfigError(
            f"k + m = {k + m} exceeds field size 2^{field.w} = {field.size}"
        )
    out = np.zeros((m, k), dtype=np.uint32)
    for i in range(m):
        for j in range(k):
            out[i, j] = field.inv(i ^ (m + j))
    return out


def bitmatrix_ones(mat: np.ndarray, field: GF) -> int:
    """Number of 1-bits in a matrix's bitmatrix expansion.

    Each 1 is one XOR in naive bitmatrix encoding, so this is the encoding
    cost the "good" matrix construction minimises.
    """
    return int(bitmatrix_from_matrix(mat, field).sum())


def build_cauchy_good_matrix(k: int, m: int, field: GF) -> np.ndarray:
    """Jerasure's ``cauchy_good_general_coding_matrix`` construction.

    Scaling a row (or column) of a Cauchy matrix by a non-zero constant
    preserves the any-square-submatrix-invertible property, but changes
    how many 1-bits its bitmatrix expansion has — i.e. how many XORs
    encoding costs.  This construction divides every column by its first
    entry (making row 0 all ones: zero-cost XOR copies), then greedily
    rescales each remaining row by the divisor minimising that row's
    bitmatrix ones.
    """
    cauchy = build_cauchy_matrix(k, m, field)
    good = cauchy.copy()
    # Column scaling: make row 0 all ones.
    for j in range(k):
        inv = field.inv(int(good[0, j]))
        for i in range(m):
            good[i, j] = field.mul(int(good[i, j]), inv)
    # Row scaling: greedily minimise each row's bit count.
    for i in range(1, m):
        row = good[i].copy()
        best_row, best_ones = row, bitmatrix_ones(row[None, :], field)
        for divisor in row:
            divisor = int(divisor)
            if divisor in (0, 1):
                continue
            scaled = np.array(
                [field.div(int(v), divisor) for v in row], dtype=np.uint32
            )
            ones = bitmatrix_ones(scaled[None, :], field)
            if ones < best_ones:
                best_row, best_ones = scaled, ones
        good[i] = best_row
    return good


class CauchyRSCode(ErasureCode):
    """Systematic Cauchy Reed-Solomon code over GF(2^w).

    Args:
        params: the (k, m, w) code shape.
        good_matrix: use the XOR-minimised "good" Cauchy construction
            instead of the original one (default False so the paper's
            baseline numbers stay unchanged; ablations flip it).

    Example:
        >>> code = CauchyRSCode(CodeParams(k=2, m=2, w=8))
        >>> data = [np.frombuffer(b"abcdefgh", dtype=np.uint8).copy(),
        ...         np.frombuffer(b"ijklmnop", dtype=np.uint8).copy()]
        >>> parity = code.encode(data)
        >>> recovered = code.decode({2: parity[0], 3: parity[1]})
        >>> bytes(recovered[0]), bytes(recovered[1])
        (b'abcdefgh', b'ijklmnop')
    """

    def __init__(self, params: CodeParams, good_matrix: bool = False):
        super().__init__(params)
        self.good_matrix = good_matrix
        self._parity_bitmatrix: np.ndarray | None = None

    def build_generator(self) -> np.ndarray:
        k, m = self.params.k, self.params.m
        gen = np.zeros((k + m, k), dtype=np.uint32)
        gen[:k] = np.eye(k, dtype=np.uint32)
        if m:
            builder = build_cauchy_good_matrix if self.good_matrix else build_cauchy_matrix
            gen[k:] = builder(k, m, self.field)
        return gen

    @property
    def parity_bitmatrix(self) -> np.ndarray:
        """GF(2) bitmatrix of the parity block: ``(m*w) x (k*w)`` of 0/1."""
        if self._parity_bitmatrix is None:
            self._parity_bitmatrix = bitmatrix_from_matrix(
                self.parity_matrix, self.field
            )
        return self._parity_bitmatrix

    def encode_bitmatrix(self, data_blocks: list[np.ndarray]) -> list[np.ndarray]:
        """Encode with XOR operations only, via the parity bitmatrix.

        Each block is viewed as ``w`` equal strips; parity strip ``r`` is
        the XOR of every data strip whose bitmatrix entry in row ``r`` is 1.
        Produces byte-identical output to :meth:`encode` (the field path) —
        tests assert this equivalence.

        Raises:
            CodeConfigError: if block sizes are not divisible by ``w``.
        """
        blocks = self._check_blocks(data_blocks)
        w = self.params.w
        size = blocks[0].nbytes
        if size % w:
            raise CodeConfigError(
                f"bitmatrix encoding needs block size divisible by w={w}, got {size}"
            )
        strip = size // w
        # Bit i of each word maps to strip i: gather data strips by
        # transposing each block's words into bit-planes.
        data_strips = _blocks_to_bitplanes(blocks, w)
        bm = self.parity_bitmatrix
        parity_strips = []
        for r in range(self.params.m * w):
            acc = np.zeros(data_strips[0].shape, dtype=np.uint8)
            for c in np.nonzero(bm[r])[0]:
                np.bitwise_xor(acc, data_strips[int(c)], out=acc)
            parity_strips.append(acc)
        return _bitplanes_to_blocks(parity_strips, self.params.m, w, size)

    def decode_bitmatrix(self, available: dict[int, np.ndarray]) -> list[np.ndarray]:
        """Decode with XOR operations only.

        The ``k x k`` decoding matrix (inverse of the surviving generator
        rows) is expanded to its GF(2) bitmatrix, so reconstruction — like
        encoding — is pure XOR.  Byte-identical to :meth:`decode`.

        Raises:
            DecodeError: with fewer than ``k`` chunks.
            CodeConfigError: if block sizes are not divisible by ``w``.
        """
        from repro.errors import DecodeError

        k, w = self.params.k, self.params.w
        if len(available) < k:
            raise DecodeError(f"need {k} chunks to decode, got {len(available)}")
        ids = sorted(available, key=lambda i: (i >= k, i))[:k]
        matrix = self.decoding_matrix(ids)
        bm = bitmatrix_from_matrix(matrix, self.field)
        blocks = [
            np.ascontiguousarray(available[i], dtype=np.uint8).ravel() for i in ids
        ]
        size = blocks[0].nbytes
        if size % w:
            raise CodeConfigError(
                f"bitmatrix decoding needs block size divisible by w={w}, got {size}"
            )
        strips = _blocks_to_bitplanes(blocks, w)
        out_strips = []
        for r in range(k * w):
            acc = np.zeros(strips[0].shape, dtype=np.uint8)
            for c in np.nonzero(bm[r])[0]:
                np.bitwise_xor(acc, strips[int(c)], out=acc)
            out_strips.append(acc)
        return _bitplanes_to_blocks(out_strips, k, w, size)


def _blocks_to_bitplanes(blocks: list[np.ndarray], w: int) -> list[np.ndarray]:
    """Split each block into ``w`` bit-plane strips.

    Jerasure's packed layout stores bit-plane ``i`` of a block as the bytes
    ``block[i*strip : (i+1)*strip]`` where consecutive words are interleaved
    across strips.  We use the simpler "column" layout: word ``t`` of the
    block contributes bit ``i`` to position ``t`` of strip ``i``.  Strips are
    packed back into bytes so XOR stays byte-wise.
    """
    out: list[np.ndarray] = []
    for block in blocks:
        if w == 8:
            words = block
        elif w == 16:
            words = block.view(np.uint16)
        elif w in (1, 2, 4):
            words = block & ((1 << w) - 1)
        else:
            raise CodeConfigError(f"unsupported w={w} for bitplanes")
        for i in range(w):
            bits = ((words >> i) & 1).astype(np.uint8)
            out.append(np.packbits(bits))
    return out


def _bitplanes_to_blocks(
    strips: list[np.ndarray], count: int, w: int, size: int
) -> list[np.ndarray]:
    """Inverse of :func:`_blocks_to_bitplanes` for ``count`` output blocks."""
    if w == 8:
        n_words, dtype = size, np.uint8
    elif w == 16:
        n_words, dtype = size // 2, np.uint16
    else:
        n_words, dtype = size, np.uint8
    out: list[np.ndarray] = []
    for b in range(count):
        words = np.zeros(n_words, dtype=np.uint32)
        for i in range(w):
            bits = np.unpackbits(strips[b * w + i])[:n_words]
            words |= bits.astype(np.uint32) << i
        block = words.astype(dtype)
        out.append(block.view(np.uint8).reshape(-1)[:size].copy())
    return out

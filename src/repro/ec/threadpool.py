"""Thread-pool-parallelised encoding, mirroring ECCheck's Sec. IV-A.

The paper accelerates CPU encoding by splitting each contiguous encoding
task into sub-tasks handled by a thread pool.  numpy XOR/multiply release
the GIL for large buffers, so even in CPython a pool gives real parallelism
on multi-core hosts; on single-core hosts the chunking is still exercised
(and is what the pipelined executor in :mod:`repro.core.pipeline` feeds on).

:class:`ThreadPoolEncoder` produces byte-identical output to the serial
encoder — tests assert this for every chunk count.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.errors import CodeConfigError
from repro.ec.base import ErasureCode


@dataclass
class EncodeStats:
    """Accounting for one thread-pool encode call."""

    sub_tasks: int
    bytes_encoded: int
    threads: int


class ThreadPoolEncoder:
    """Encode ``k`` blocks by fanning sub-ranges out to a thread pool.

    Args:
        code: the erasure code to apply.
        threads: pool size (defaults to 4, the sweet spot the paper's
            thread-pool technique targets on its EPYC hosts).
        min_subtask_bytes: sub-tasks smaller than this are merged, so tiny
            buffers don't pay pool overhead.
    """

    def __init__(
        self,
        code: ErasureCode,
        threads: int = 4,
        min_subtask_bytes: int = 4096,
    ):
        if threads < 1:
            raise CodeConfigError(f"threads must be >= 1, got {threads}")
        self.code = code
        self.threads = threads
        self.min_subtask_bytes = min_subtask_bytes
        self.last_stats: EncodeStats | None = None

    def _split_ranges(self, block_size: int) -> list[tuple[int, int]]:
        """Byte ranges (aligned for w=16) covering ``block_size``."""
        word = 2 if self.code.params.w == 16 else 1
        target = max(self.min_subtask_bytes, block_size // self.threads)
        target = max(word, (target // word) * word)
        ranges = []
        start = 0
        while start < block_size:
            end = min(block_size, start + target)
            # Keep every sub-range word-aligned except possibly the last.
            if end != block_size:
                end = (end // word) * word
            ranges.append((start, end))
            start = end
        return ranges

    def encode(self, data_blocks: list[np.ndarray]) -> list[np.ndarray]:
        """Parallel encode; returns ``m`` parity blocks, byte-identical to
        ``code.encode(data_blocks)``."""
        blocks = [np.ascontiguousarray(b, dtype=np.uint8).ravel() for b in data_blocks]
        if len(blocks) != self.code.params.k:
            raise CodeConfigError(
                f"expected {self.code.params.k} blocks, got {len(blocks)}"
            )
        size = blocks[0].nbytes
        if any(b.nbytes != size for b in blocks):
            raise CodeConfigError("data blocks differ in size")
        ranges = self._split_ranges(size)
        parity = [np.zeros(size, dtype=np.uint8) for _ in range(self.code.params.m)]

        def encode_range(rng: tuple[int, int]) -> None:
            start, end = rng
            sub_parity = self.code.encode([b[start:end] for b in blocks])
            for out, piece in zip(parity, sub_parity):
                out[start:end] = piece

        if self.threads == 1 or len(ranges) == 1:
            for rng in ranges:
                encode_range(rng)
        else:
            with ThreadPoolExecutor(max_workers=self.threads) as pool:
                list(pool.map(encode_range, ranges))
        self.last_stats = EncodeStats(
            sub_tasks=len(ranges), bytes_encoded=size * len(blocks), threads=self.threads
        )
        return parity

"""Thread-pool-parallelised encoding, mirroring ECCheck's Sec. IV-A.

The paper accelerates CPU encoding by splitting each contiguous encoding
task into sub-tasks handled by a thread pool.  numpy XOR/multiply release
the GIL for large buffers, so even in CPython a pool gives real parallelism
on multi-core hosts; on single-core hosts the chunking is still exercised
(and is what the pipelined executor in :mod:`repro.core.pipeline` feeds on).

:class:`ThreadPoolEncoder` produces byte-identical output to the serial
encoder — tests assert this for every chunk count.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.errors import CodeConfigError
from repro.ec.base import ErasureCode
from repro.ec.kernels import range_alignment


@dataclass
class EncodeStats:
    """Accounting for one thread-pool encode call."""

    sub_tasks: int
    bytes_encoded: int
    threads: int
    fast_path: bool = False


class ThreadPoolEncoder:
    """Encode ``k`` blocks by fanning sub-ranges out to a thread pool.

    Args:
        code: the erasure code to apply.
        threads: pool size (defaults to 4, the sweet spot the paper's
            thread-pool technique targets on its EPYC hosts).
        min_subtask_bytes: sub-tasks smaller than this are merged, so tiny
            buffers don't pay pool overhead.
    """

    def __init__(
        self,
        code: ErasureCode,
        threads: int = 4,
        min_subtask_bytes: int = 4096,
    ):
        if threads < 1:
            raise CodeConfigError(f"threads must be >= 1, got {threads}")
        self.code = code
        self.threads = threads
        self.min_subtask_bytes = min_subtask_bytes
        self.last_stats: EncodeStats | None = None

    def _split_ranges(self, block_size: int) -> list[tuple[int, int]]:
        """Byte ranges covering ``block_size``, aligned to the kernel word.

        Boundaries honour :func:`repro.ec.kernels.range_alignment` (8 bytes,
        16 for w=16) so every sub-range — including the last, whenever the
        block size itself is divisible by ``w`` — is a valid independent
        input for the word-packed bitmatrix kernels.
        """
        word = range_alignment(self.code.params.w)
        target = max(self.min_subtask_bytes, block_size // self.threads)
        target = max(word, (target // word) * word)
        ranges = []
        start = 0
        while start < block_size:
            end = min(block_size, start + target)
            # Keep every sub-range word-aligned except possibly the last.
            if end != block_size:
                end = (end // word) * word
            ranges.append((start, end))
            start = end
        return ranges

    def _can_fast_path(self, size: int) -> bool:
        """True when the bitmatrix kernel path applies to this encode."""
        return (
            hasattr(self.code, "encode_bitmatrix_into")
            and self.code.params.m > 0
            and size > 0
            and size % self.code.params.w == 0
        )

    def encode(self, data_blocks: list[np.ndarray]) -> list[np.ndarray]:
        """Parallel encode; returns ``m`` parity blocks, byte-identical to
        ``code.encode(data_blocks)``.

        When the code exposes the bitmatrix kernel path
        (:meth:`~repro.ec.cauchy.CauchyRSCode.encode_bitmatrix_into`) and the
        block size is divisible by ``w``, each worker drives the compiled
        schedule over its sub-range and writes parity bytes directly into
        views of the preallocated output blocks — no per-range temporaries.
        """
        blocks = [np.ascontiguousarray(b, dtype=np.uint8).ravel() for b in data_blocks]
        if len(blocks) != self.code.params.k:
            raise CodeConfigError(
                f"expected {self.code.params.k} blocks, got {len(blocks)}"
            )
        size = blocks[0].nbytes
        if any(b.nbytes != size for b in blocks):
            raise CodeConfigError("data blocks differ in size")
        ranges = self._split_ranges(size)
        parity = [np.empty(size, dtype=np.uint8) for _ in range(self.code.params.m)]
        fast = self._can_fast_path(size)

        if fast:

            def encode_range(rng: tuple[int, int]) -> None:
                start, end = rng
                self.code.encode_bitmatrix_into(
                    [b[start:end] for b in blocks],
                    [out[start:end] for out in parity],
                )

        else:

            def encode_range(rng: tuple[int, int]) -> None:
                start, end = rng
                sub_parity = self.code.encode([b[start:end] for b in blocks])
                for out, piece in zip(parity, sub_parity):
                    out[start:end] = piece

        tracer = obs.get_tracer()
        with tracer.span(
            "threadpool.encode",
            nbytes=size * len(blocks),
            sub_tasks=len(ranges),
            fast_path=fast,
        ):
            if self.threads == 1 or len(ranges) == 1:
                for rng in ranges:
                    encode_range(rng)
            else:
                with ThreadPoolExecutor(max_workers=self.threads) as pool:
                    list(pool.map(encode_range, ranges))
        self.last_stats = EncodeStats(
            sub_tasks=len(ranges),
            bytes_encoded=size * len(blocks),
            threads=self.threads,
            fast_path=fast,
        )
        if tracer.enabled:
            m = tracer.metrics
            m.counter("encoder.calls").inc()
            m.counter("encoder.bytes_encoded").inc(size * len(blocks))
            m.counter("encoder.sub_tasks").inc(len(ranges))
            m.counter(
                "encoder.fast_path_calls" if fast else "encoder.slow_path_calls"
            ).inc()
        return parity

"""Thread-pool-parallelised encoding, mirroring ECCheck's Sec. IV-A.

The paper accelerates CPU encoding by splitting each contiguous encoding
task into sub-tasks handled by a thread pool.  numpy XOR/multiply release
the GIL for large buffers, so even in CPython a pool gives real parallelism
on multi-core hosts; on single-core hosts the chunking is still exercised
(and is what the pipelined executor in :mod:`repro.core.pipeline` feeds on).

Two pieces here are shared with the shared-memory process pool
(:mod:`repro.ec.procpool`), forming the common dispatch interface every
encoder backend implements:

* :func:`split_ranges` — the word-aligned sub-range splitter (identical
  stripe assignment means identical per-range kernel invocations, which
  is what makes every backend byte-identical to the serial path);
* :class:`EncodeStats` — the per-call accounting record, including which
  execution ``mode`` the call actually took.

:class:`ThreadPoolEncoder` produces byte-identical output to the serial
encoder — tests assert this for every chunk count.  Because the GIL can
make pooled encoding *slower* than single-shot (bit-plane decompose runs
under the GIL; only the XOR stage reliably releases it), the encoder
self-calibrates per payload-size bucket: the first call at a bucket runs
single-shot, the second runs pooled, and later calls take whichever
measured faster.  Either way the bytes are identical — the calibration
only ever changes wall time.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.errors import CodeConfigError
from repro.ec.base import ErasureCode
from repro.ec.kernels import range_alignment


@dataclass
class EncodeStats:
    """Accounting for one encoder call (any backend)."""

    sub_tasks: int
    bytes_encoded: int
    threads: int
    fast_path: bool = False
    #: Execution route actually taken: ``"pool"`` (fanned out to workers),
    #: ``"single"`` (single-shot fallback), or ``"serial"`` (no fast path).
    mode: str = "pool"
    #: Which encoder backend produced this record.
    backend: str = "thread"


def split_ranges(
    block_size: int, parts: int, min_subtask_bytes: int, w: int
) -> list[tuple[int, int]]:
    """Byte ranges covering ``block_size``, aligned to the kernel word.

    Boundaries honour :func:`repro.ec.kernels.range_alignment` (8 bytes,
    16 for w=16) so every sub-range — including the last, whenever the
    block size itself is divisible by ``w`` — is a valid independent
    input for the word-packed bitmatrix kernels.  Both pool encoders use
    this splitter, so their per-range kernel calls (and therefore their
    output bytes) are identical to each other and to the serial path.
    """
    word = range_alignment(w)
    target = max(min_subtask_bytes, block_size // max(parts, 1))
    target = max(word, (target // word) * word)
    ranges = []
    start = 0
    while start < block_size:
        end = min(block_size, start + target)
        # Keep every sub-range word-aligned except possibly the last.
        if end != block_size:
            end = (end // word) * word
        ranges.append((start, end))
        start = end
    return ranges


class ThreadPoolEncoder:
    """Encode ``k`` blocks by fanning sub-ranges out to a thread pool.

    Args:
        code: the erasure code to apply.
        threads: pool size (defaults to 4, the sweet spot the paper's
            thread-pool technique targets on its EPYC hosts).
        min_subtask_bytes: sub-tasks smaller than this are merged, so tiny
            buffers don't pay pool overhead.
        adaptive: self-calibrate pooled vs single-shot per payload-size
            bucket and take the measured winner (see the module docstring).
            ``False`` restores the always-pool behaviour, which the
            benchmark uses to measure the pure pooled number.
    """

    def __init__(
        self,
        code: ErasureCode,
        threads: int = 4,
        min_subtask_bytes: int = 4096,
        adaptive: bool = True,
    ):
        if threads < 1:
            raise CodeConfigError(f"threads must be >= 1, got {threads}")
        self.code = code
        self.threads = threads
        self.min_subtask_bytes = min_subtask_bytes
        self.adaptive = adaptive
        self.last_stats: EncodeStats | None = None
        #: size-bucket -> {"single": seconds, "pool": seconds} calibration
        #: measurements; the winner is re-derived on every adaptive call.
        self._calibration: dict[int, dict[str, float]] = {}
        self._clock = time.perf_counter  # injectable for tests

    def _split_ranges(self, block_size: int) -> list[tuple[int, int]]:
        return split_ranges(
            block_size, self.threads, self.min_subtask_bytes, self.code.params.w
        )

    def _can_fast_path(self, size: int) -> bool:
        """True when the bitmatrix kernel path applies to this encode."""
        return (
            hasattr(self.code, "encode_bitmatrix_into")
            and self.code.params.m > 0
            and size > 0
            and size % self.code.params.w == 0
        )

    def _pick_mode(self, size: int, n_ranges: int) -> str:
        """Choose pooled vs single-shot execution for this call.

        Adaptive calibration: per power-of-two size bucket, measure
        single-shot on the first call and pooled on the second; from then
        on take the winner.  A pooled run whose per-thread gain is
        negative (the GIL-serialisation failure mode this fixes) loses
        the measurement and every later call at that size falls back.
        """
        if self.threads == 1 or n_ranges == 1:
            return "single"
        if not self.adaptive:
            return "pool"
        cal = self._calibration.setdefault(size.bit_length(), {})
        if "single" not in cal:
            return "single"
        if "pool" not in cal:
            return "pool"
        return "single" if cal["single"] <= cal["pool"] else "pool"

    def encode(self, data_blocks: list[np.ndarray]) -> list[np.ndarray]:
        """Parallel encode; returns ``m`` parity blocks, byte-identical to
        ``code.encode(data_blocks)``.

        When the code exposes the bitmatrix kernel path
        (:meth:`~repro.ec.cauchy.CauchyRSCode.encode_bitmatrix_into`) and the
        block size is divisible by ``w``, each worker drives the compiled
        schedule over its sub-range and writes parity bytes directly into
        views of the preallocated output blocks — no per-range temporaries.
        """
        blocks = [np.ascontiguousarray(b, dtype=np.uint8).ravel() for b in data_blocks]
        if len(blocks) != self.code.params.k:
            raise CodeConfigError(
                f"expected {self.code.params.k} blocks, got {len(blocks)}"
            )
        size = blocks[0].nbytes
        if any(b.nbytes != size for b in blocks):
            raise CodeConfigError("data blocks differ in size")
        ranges = self._split_ranges(size)
        parity = [np.empty(size, dtype=np.uint8) for _ in range(self.code.params.m)]
        fast = self._can_fast_path(size)
        mode = self._pick_mode(size, len(ranges)) if fast else "serial"

        if fast:

            def encode_range(rng: tuple[int, int]) -> None:
                start, end = rng
                self.code.encode_bitmatrix_into(
                    [b[start:end] for b in blocks],
                    [out[start:end] for out in parity],
                )

        else:

            def encode_range(rng: tuple[int, int]) -> None:
                start, end = rng
                sub_parity = self.code.encode([b[start:end] for b in blocks])
                for out, piece in zip(parity, sub_parity):
                    out[start:end] = piece

        sub_tasks = 1 if mode == "single" else len(ranges)
        tracer = obs.get_tracer()
        with tracer.span(
            "threadpool.encode",
            nbytes=size * len(blocks),
            sub_tasks=sub_tasks,
            fast_path=fast,
            mode=mode,
        ):
            started = self._clock()
            if mode == "single":
                # One kernel invocation over the whole block: identical
                # bytes (the kernel is chunk-blocked internally) without
                # the pool's per-range workspace setup.
                self.code.encode_bitmatrix_into(blocks, parity)
            elif mode == "pool":
                with ThreadPoolExecutor(max_workers=self.threads) as pool:
                    list(pool.map(encode_range, ranges))
            else:
                for rng in ranges:
                    encode_range(rng)
            elapsed = self._clock() - started
        if fast and self.adaptive and mode in ("single", "pool"):
            cal = self._calibration.setdefault(size.bit_length(), {})
            # Keep the best observation per mode: transient noise (a GC
            # pause during calibration) must not pin a wrong winner.
            cal[mode] = min(cal.get(mode, float("inf")), elapsed)
        self.last_stats = EncodeStats(
            sub_tasks=sub_tasks,
            bytes_encoded=size * len(blocks),
            threads=self.threads,
            fast_path=fast,
            mode=mode,
            backend="thread",
        )
        if tracer.enabled:
            m = tracer.metrics
            m.counter("encoder.calls").inc()
            m.counter("encoder.bytes_encoded").inc(size * len(blocks))
            m.counter("encoder.sub_tasks").inc(sub_tasks)
            m.counter(
                "encoder.fast_path_calls" if fast else "encoder.slow_path_calls"
            ).inc()
            m.counter(f"encoder.mode_{mode}_calls").inc()
        return parity

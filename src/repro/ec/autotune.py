"""Schedule/kernel autotuner: measure once, dispatch forever.

The bitmatrix fast path has three independent tuning axes, none of which
has a universal winner:

* **schedule kind** — Paar-CSE (``"paar"``) usually executes the fewest
  XORs, but its longer dependency chains can lose to the level-fused
  ``"smart"`` schedule (or even the plain-bitmatrix ``"dumb"`` one) at
  small block sizes where compile-shape overheads dominate;
* **decompose kind** — the ``packbits`` broadcast-AND split (``"pack"``)
  vs the 64-bit SWAR word transpose (``"swar"``, w ∈ {8, 16} only) —
  relative speed flips with w and with how much of the block is
  L2-resident;
* **chunk bytes** — the cache-blocking granularity of
  :func:`repro.ec.kernels.apply_schedule_blocks`.

Every combination is byte-identical by construction (the equivalence
property tests sweep all of them), so picking differently can only ever
change wall time — which is what makes it safe to pick *per shape from
measurement* rather than globally from guesswork.

The **decode path** has its own tuning axis: the decoding schedule is
fixed (``dumb`` over the inverted survivor matrix, cached per survivor
set), but its cache-blocking chunk size is independent of the encode
winner's — the decode bitmatrix is denser, so the working set per chunk
differs.  Decode winners are stored under the same key schema with an
``op=decode`` suffix and consulted by
:meth:`repro.ec.cauchy.CauchyRSCode.decode_bitmatrix` when the caller
does not pin an explicit ``chunk_bytes``.

Winners are keyed by ``(k, m, w, good_matrix, block-size bucket)`` and
cached in memory plus a small JSON file next to the repo (the disk
counterpart of the in-process schedule/decode LRUs).  ``repro
bench-encode --autotune`` populates the file; later processes warm-start
from it.  Entries record the numpy version and machine that measured
them and are ignored — not trusted — when either changes.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.ec.kernels import (
    DECOMPOSE_KINDS,
    DEFAULT_CHUNK_BYTES,
    apply_schedule_blocks,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ec.cauchy import CauchyRSCode

#: Environment variable overriding the on-disk cache location.
CACHE_ENV = "REPRO_AUTOTUNE_CACHE"

#: Default cache file (repo root when running from a checkout; listed in
#: .gitignore — measurements are machine-local by definition).
DEFAULT_CACHE_FILE = ".repro_autotune.json"

#: On-disk format version; bump to orphan old caches wholesale.
CACHE_VERSION = 1

SCHEDULE_KINDS = ("paar", "smart", "dumb")

#: Chunk sizes worth trying: the L2-resident default and one size up
#: (fewer workspace refills for shapes whose strips are small).
CHUNK_CANDIDATES = (DEFAULT_CHUNK_BYTES, DEFAULT_CHUNK_BYTES * 4)


@dataclass(frozen=True)
class Variant:
    """One point in the tuning space; every point is byte-identical."""

    schedule_kind: str = "paar"
    decompose_kind: str = "pack"
    chunk_bytes: int = DEFAULT_CHUNK_BYTES


DEFAULT_VARIANT = Variant()

# In-memory winner table plus hit/miss accounting (surfaced as gauges by
# the obs runner, mirroring schedule_cache_info / decode_cache_info).
_MEMORY: dict[str, Variant] = {}
_STATS = {"hits": 0, "misses": 0, "stores": 0, "stale_entries": 0}
_LOADED = False


def cache_path() -> str:
    return os.environ.get(CACHE_ENV, DEFAULT_CACHE_FILE)


def _environment() -> dict[str, str]:
    """The cache-invalidation fingerprint stored with every entry set."""
    return {
        "numpy": np.__version__,
        "machine": platform.machine(),
        "python": platform.python_version_tuple()[0]
        + "."
        + platform.python_version_tuple()[1],
    }


def _size_bucket(size: int) -> int:
    """Power-of-two bucket: blocks within 2x share a winner."""
    return max(size, 1).bit_length()


def _key(code: "CauchyRSCode", size: int) -> str:
    p = code.params
    good = int(getattr(code, "good_matrix", False))
    return f"k={p.k},m={p.m},w={p.w},good={good},bucket={_size_bucket(size)}"


def candidate_variants(w: int) -> list[Variant]:
    """All variants applicable to word size ``w``."""
    decompose = [k for k in DECOMPOSE_KINDS if k == "pack" or w in (8, 16)]
    return [
        Variant(s, d, c)
        for s in SCHEDULE_KINDS
        for d in decompose
        for c in CHUNK_CANDIDATES
    ]


# ---------------------------------------------------------------------------
# Disk cache
# ---------------------------------------------------------------------------


def load_cache(path: Optional[str] = None) -> int:
    """Warm-start the in-memory table from disk; returns entries loaded.

    Entries are dropped (counted in ``stale_entries``) when the recorded
    numpy version or machine differs from the running environment, or on
    a format-version mismatch — a measurement from a different BLAS/SIMD
    world is worse than the default.
    """
    global _LOADED
    _LOADED = True
    path = path or cache_path()
    try:
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return 0
    if payload.get("version") != CACHE_VERSION:
        return 0
    if payload.get("environment") != _environment():
        _STATS["stale_entries"] += len(payload.get("entries", {}))
        return 0
    loaded = 0
    for key, entry in payload.get("entries", {}).items():
        try:
            variant = Variant(
                schedule_kind=str(entry["schedule_kind"]),
                decompose_kind=str(entry["decompose_kind"]),
                chunk_bytes=int(entry["chunk_bytes"]),
            )
        except (KeyError, TypeError, ValueError):
            _STATS["stale_entries"] += 1
            continue
        if (
            variant.schedule_kind not in SCHEDULE_KINDS
            or variant.decompose_kind not in DECOMPOSE_KINDS
            or variant.chunk_bytes <= 0
        ):
            _STATS["stale_entries"] += 1
            continue
        _MEMORY.setdefault(key, variant)
        loaded += 1
    return loaded


def save_cache(path: Optional[str] = None) -> str:
    """Persist the in-memory winner table; returns the path written."""
    path = path or cache_path()
    payload = {
        "version": CACHE_VERSION,
        "environment": _environment(),
        "entries": {key: asdict(v) for key, v in sorted(_MEMORY.items())},
    }
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)
    return path


def clear_cache(memory_only: bool = True) -> None:
    """Reset tuner state (test hook)."""
    global _LOADED
    _MEMORY.clear()
    for k in _STATS:
        _STATS[k] = 0
    _LOADED = False
    if not memory_only:
        try:
            os.unlink(cache_path())
        except FileNotFoundError:
            pass


def autotune_cache_info() -> dict[str, int]:
    """Hit/miss counters of the winner table (gauge feed)."""
    return dict(_STATS, entries=len(_MEMORY))


# ---------------------------------------------------------------------------
# Lookup + measurement
# ---------------------------------------------------------------------------


def best_variant(code: "CauchyRSCode", size: int) -> Variant:
    """The cached winner for this shape, or the default on a miss.

    This sits on the per-call encode path (including inside pool
    workers), so it is a dict lookup after a one-time lazy disk load.
    """
    if not _LOADED:
        load_cache()
    variant = _MEMORY.get(_key(code, size))
    if variant is None:
        _STATS["misses"] += 1
        return DEFAULT_VARIANT
    _STATS["hits"] += 1
    return variant


def store_variant(code: "CauchyRSCode", size: int, variant: Variant) -> None:
    _MEMORY[_key(code, size)] = variant
    _STATS["stores"] += 1


def _decode_key(code: "CauchyRSCode", size: int) -> str:
    return f"{_key(code, size)},op=decode"


def best_decode_chunk(code: "CauchyRSCode", size: int) -> int:
    """The measured decode chunk size for this shape, or the default.

    Decode is tuned separately from encode: the survivor-matrix
    bitmatrix is denser than the parity bitmatrix, so the chunk size
    that keeps the encode working set L2-resident is not automatically
    right for reconstruction.
    """
    if not _LOADED:
        load_cache()
    variant = _MEMORY.get(_decode_key(code, size))
    if variant is None:
        _STATS["misses"] += 1
        return DEFAULT_CHUNK_BYTES
    _STATS["hits"] += 1
    return variant.chunk_bytes


def store_decode_chunk(code: "CauchyRSCode", size: int, chunk_bytes: int) -> None:
    """Record a decode-path chunk winner (schedule/decompose are fixed
    on the decode path, so only the blocking axis is stored)."""
    _MEMORY[_decode_key(code, size)] = Variant(
        schedule_kind="dumb", decompose_kind="pack", chunk_bytes=int(chunk_bytes)
    )
    _STATS["stores"] += 1


def measure_variant(
    code: "CauchyRSCode",
    blocks: list[np.ndarray],
    out_blocks: list[np.ndarray],
    variant: Variant,
    repeats: int = 3,
) -> float:
    """Best-of-``repeats`` seconds for one variant on real kernels."""
    from repro.ec.cauchy import cached_schedule

    ops = cached_schedule(code, variant.schedule_kind).compiled_ops()
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        apply_schedule_blocks(
            ops,
            blocks,
            out_blocks,
            code.params.w,
            variant.chunk_bytes,
            variant.decompose_kind,
        )
        best = min(best, time.perf_counter() - t0)
    return best


def autotune(
    code: "CauchyRSCode",
    size: int,
    repeats: int = 3,
    seed: int = 0,
) -> tuple[Variant, dict[str, float]]:
    """Measure every candidate variant at ``size`` and record the winner.

    Returns the winning variant and a ``variant-label -> seconds``
    timing table.  The winner goes into the in-memory table immediately;
    call :func:`save_cache` to persist (the CLI does this after a full
    ``--autotune`` sweep).
    """
    w = code.params.w
    size = max(w, (size // w) * w)
    rng = np.random.default_rng(seed)
    blocks = [
        rng.integers(0, 256, size, dtype=np.uint8) for _ in range(code.params.k)
    ]
    outs = [np.empty(size, dtype=np.uint8) for _ in range(code.params.m)]
    timings: dict[str, float] = {}
    best_v, best_t = DEFAULT_VARIANT, float("inf")
    for variant in candidate_variants(w):
        elapsed = measure_variant(code, blocks, outs, variant, repeats=repeats)
        label = (
            f"{variant.schedule_kind}/{variant.decompose_kind}"
            f"/{variant.chunk_bytes // 1024}K"
        )
        timings[label] = elapsed
        if elapsed < best_t:
            best_v, best_t = variant, elapsed
    store_variant(code, size, best_v)
    return best_v, timings


def autotune_decode(
    code: "CauchyRSCode",
    size: int,
    repeats: int = 3,
    seed: int = 0,
) -> tuple[int, dict[str, float]]:
    """Measure decode chunk candidates and record the winner.

    Uses the worst-case survivor set — the first ``min(m, k)`` data
    chunks lost, every missing block reconstructed from parity — so the
    measurement exercises the densest decoding bitmatrix this shape can
    produce.  Returns the winning chunk size and a timing table.
    """
    k, m, w = code.params.k, code.params.m, code.params.w
    size = max(w, (size // w) * w)
    lost = min(m, k)
    ids = tuple(list(range(lost, k)) + list(range(k, k + lost)))
    rng = np.random.default_rng(seed)
    blocks = [rng.integers(0, 256, size, dtype=np.uint8) for _ in ids]
    outs = [np.empty(size, dtype=np.uint8) for _ in range(k)]
    ops = code._decode_schedule(ids).compiled_ops()
    timings: dict[str, float] = {}
    best_c, best_t = DEFAULT_CHUNK_BYTES, float("inf")
    for chunk_bytes in CHUNK_CANDIDATES:
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            apply_schedule_blocks(ops, blocks, outs, w, chunk_bytes)
            best = min(best, time.perf_counter() - t0)
        timings[f"decode/{chunk_bytes // 1024}K"] = best
        if best < best_t:
            best_c, best_t = chunk_bytes, best
    store_decode_chunk(code, size, best_c)
    return best_c, timings

"""Erasure codes and block encoders.

The coding stack has three levels:

1. **Codes** (:class:`~repro.ec.base.ErasureCode` subclasses) own a
   systematic generator matrix over GF(2^w): Cauchy Reed-Solomon
   (:class:`~repro.ec.cauchy.CauchyRSCode`, the scheme ECCheck uses),
   classic Vandermonde Reed-Solomon, the repetition code used by
   replication baselines, and a single-parity XOR code.
2. **Schedules** (:mod:`repro.ec.schedule`) compile a Cauchy bitmatrix into
   an explicit list of XOR operations, with an optimised variant that reuses
   intermediate parity rows.
3. **Encoders** (:mod:`repro.ec.encoder`, :mod:`repro.ec.threadpool`,
   :mod:`repro.ec.procpool`) apply a code to real byte payloads —
   splitting, padding, chunking for thread- or process-pool parallelism
   (the latter over shared-memory segments), and reassembling decoded
   output.  :mod:`repro.ec.autotune` picks the fastest schedule/kernel
   variant per code shape from measurement.

Underneath all three sits the **kernel layer** (:mod:`repro.ec.kernels`):
word-packed, cache-blocked GF(2) primitives that every hot path — schedule
execution, bitmatrix encode/decode, the XOR-reduce protocol step — runs on.
See DESIGN.md "Hot path architecture".
"""

from repro.ec.base import CodeParams, ErasureCode
from repro.ec.cauchy import (
    CauchyRSCode,
    bitmatrix_ones,
    build_cauchy_good_matrix,
    build_cauchy_matrix,
    schedule_cache_info,
)
from repro.ec.kernels import (
    DEFAULT_CHUNK_BYTES,
    WORD_BYTES,
    apply_schedule_blocks,
    range_alignment,
    xor_reduce_arrays,
    xor_reduce_into,
)
from repro.ec.vandermonde import VandermondeRSCode, build_vandermonde_generator
from repro.ec.replication import ReplicationCode
from repro.ec.xor_code import SingleParityCode
from repro.ec.schedule import XorSchedule, dumb_schedule, paar_schedule, smart_schedule
from repro.ec.encoder import BlockEncoder, pad_and_split, reassemble
from repro.ec.threadpool import EncodeStats, ThreadPoolEncoder, split_ranges
from repro.ec.procpool import SharedMemoryProcessPoolEncoder, make_encoder
from repro.ec.autotune import Variant, autotune_cache_info, best_variant

__all__ = [
    "CodeParams",
    "ErasureCode",
    "CauchyRSCode",
    "bitmatrix_ones",
    "build_cauchy_good_matrix",
    "build_cauchy_matrix",
    "schedule_cache_info",
    "DEFAULT_CHUNK_BYTES",
    "WORD_BYTES",
    "apply_schedule_blocks",
    "range_alignment",
    "xor_reduce_arrays",
    "xor_reduce_into",
    "VandermondeRSCode",
    "build_vandermonde_generator",
    "ReplicationCode",
    "SingleParityCode",
    "XorSchedule",
    "dumb_schedule",
    "paar_schedule",
    "smart_schedule",
    "BlockEncoder",
    "pad_and_split",
    "reassemble",
    "EncodeStats",
    "ThreadPoolEncoder",
    "split_ranges",
    "SharedMemoryProcessPoolEncoder",
    "make_encoder",
    "Variant",
    "autotune_cache_info",
    "best_variant",
]

"""Erasure codes and block encoders.

The coding stack has three levels:

1. **Codes** (:class:`~repro.ec.base.ErasureCode` subclasses) own a
   systematic generator matrix over GF(2^w): Cauchy Reed-Solomon
   (:class:`~repro.ec.cauchy.CauchyRSCode`, the scheme ECCheck uses),
   classic Vandermonde Reed-Solomon, the repetition code used by
   replication baselines, and a single-parity XOR code.
2. **Schedules** (:mod:`repro.ec.schedule`) compile a Cauchy bitmatrix into
   an explicit list of XOR operations, with an optimised variant that reuses
   intermediate parity rows.
3. **Encoders** (:mod:`repro.ec.encoder`, :mod:`repro.ec.threadpool`) apply
   a code to real byte payloads — splitting, padding, chunking for
   thread-pool parallelism, and reassembling decoded output.
"""

from repro.ec.base import CodeParams, ErasureCode
from repro.ec.cauchy import (
    CauchyRSCode,
    bitmatrix_ones,
    build_cauchy_good_matrix,
    build_cauchy_matrix,
)
from repro.ec.vandermonde import VandermondeRSCode, build_vandermonde_generator
from repro.ec.replication import ReplicationCode
from repro.ec.xor_code import SingleParityCode
from repro.ec.schedule import XorSchedule, dumb_schedule, smart_schedule
from repro.ec.encoder import BlockEncoder, pad_and_split, reassemble
from repro.ec.threadpool import ThreadPoolEncoder

__all__ = [
    "CodeParams",
    "ErasureCode",
    "CauchyRSCode",
    "bitmatrix_ones",
    "build_cauchy_good_matrix",
    "build_cauchy_matrix",
    "VandermondeRSCode",
    "build_vandermonde_generator",
    "ReplicationCode",
    "SingleParityCode",
    "XorSchedule",
    "dumb_schedule",
    "smart_schedule",
    "BlockEncoder",
    "pad_and_split",
    "reassemble",
    "ThreadPoolEncoder",
]

"""Shared-memory process-pool encoder: the GIL-free encode fast path.

``ThreadPoolEncoder`` tops out well below memory bandwidth because only
the XOR stage of the kernel pipeline reliably releases the GIL — the
bit-plane decompose/recompose stages run short numpy calls that
re-acquire it, so adding threads mostly adds lock convoy.  This module
moves the fan-out across *processes* instead:

* The encoder owns two ``multiprocessing.shared_memory`` segments — one
  carved into ``k`` data-block slots, one into ``m`` parity slots — and
  stages each encode call's blocks into the data segment once.
* Worker processes attach the segments **by name** and run the same
  compiled-schedule kernels over zero-copy numpy views of their assigned
  stripe.  A task submission is a tuple of names and byte offsets; tensor
  bytes are never pickled.
* Stripe assignment reuses :func:`repro.ec.threadpool.split_ranges` — the
  identical word-aligned splitting the thread pool uses — so each
  sub-range's kernel invocation, and therefore the output bytes, are
  byte-identical to the serial path.

Lifecycle: segments are unlinked on :meth:`close`, on a worker crash
(``BrokenProcessPool`` tears the pool down and releases the segments
before re-raising), on :meth:`reconfigure` (the next encode reallocates
at the new shape), and — as a last resort — by a ``weakref.finalize``
when the encoder is garbage collected.  Workers attach segments lazily
and unregister them from their own ``resource_tracker`` so a worker exit
never unlinks a segment the parent still owns.

Worker wall time is reported back to the parent, which records child
spans under the coordinating ``procpool.encode`` span via the tracer's
explicit cross-thread/cross-process parent mechanism (``perf_counter``
is ``CLOCK_MONOTONIC`` system-wide on Linux, so worker timestamps live
on the parent's clock).
"""

from __future__ import annotations

import os
import time
import uuid
import weakref
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import get_context
from multiprocessing import shared_memory
from typing import Any

import numpy as np

from repro import obs
from repro.errors import CodeConfigError, EncodeError
from repro.ec.base import CodeParams, ErasureCode
from repro.ec.threadpool import EncodeStats, ThreadPoolEncoder, split_ranges

#: Prefix of every shared-memory segment this module creates; the test
#: suite sweeps ``/dev/shm`` for it to prove nothing leaks.
SEGMENT_PREFIX = "repro-ec"

#: Segment slots are padded to whole pages so adjacent blocks never share
#: a cache line across stripe boundaries.
_SLOT_ALIGN = 4096

#: Processes pay far more per task than threads (pickle + queue + wakeup),
#: so the default sub-task floor is much higher than the thread pool's.
DEFAULT_MIN_SUBTASK_BYTES = 1 << 20


def _round_slot(nbytes: int) -> int:
    return max(_SLOT_ALIGN, -(-nbytes // _SLOT_ALIGN) * _SLOT_ALIGN)


# ---------------------------------------------------------------------------
# Worker side.  Everything here is module-level so the spawn start method
# pickles tasks by reference; caches live per worker process.
# ---------------------------------------------------------------------------

_WORKER_SEGMENTS: dict[str, shared_memory.SharedMemory] = {}
_WORKER_CODES: dict[tuple, Any] = {}


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach (and cache) a parent-owned segment by name.

    On 3.13+ we attach with ``track=False``: the parent owns the
    lifecycle.  Before 3.13 attaching registers the name with the
    resource tracker, but pool workers inherit the *parent's* tracker
    process (spawn passes ``tracker_fd``), so the register is an
    idempotent set-add of a name the parent already tracks — crucially we
    must NOT unregister here, or the parent's own unlink would find the
    name gone and leak-on-crash protection would be lost.
    """
    seg = _WORKER_SEGMENTS.get(name)
    if seg is None:
        try:
            seg = shared_memory.SharedMemory(name=name, track=False)
        except TypeError:  # track= is 3.13+
            seg = shared_memory.SharedMemory(name=name)
        _WORKER_SEGMENTS[name] = seg
    return seg


def _evict_stale_segments(keep: set[str]) -> None:
    """Close attachments to segments the parent has since reallocated."""
    for name in [n for n in _WORKER_SEGMENTS if n not in keep]:
        seg = _WORKER_SEGMENTS.pop(name)
        try:
            seg.close()
        except BufferError:  # pragma: no cover - view still referenced
            pass


def _worker_code(k: int, m: int, w: int, good_matrix: bool):
    code = _WORKER_CODES.get((k, m, w, good_matrix))
    if code is None:
        from repro.ec.cauchy import CauchyRSCode

        code = CauchyRSCode(CodeParams(k=k, m=m, w=w), good_matrix=good_matrix)
        _WORKER_CODES[(k, m, w, good_matrix)] = code
    return code


def _worker_encode(task: tuple) -> tuple[int, float, float]:
    """Encode one stripe of the shared segments; returns (pid, t0, t1).

    The task carries only segment names, the code shape and byte offsets.
    Timestamps are ``perf_counter`` readings for the parent's span
    reconstruction.
    """
    (
        data_name,
        parity_name,
        k,
        m,
        w,
        good_matrix,
        data_stride,
        parity_stride,
        start,
        end,
    ) = task
    t0 = time.perf_counter()
    data_seg = _attach_segment(data_name)
    parity_seg = _attach_segment(parity_name)
    _evict_stale_segments({data_name, parity_name})
    code = _worker_code(k, m, w, good_matrix)
    dbuf = np.frombuffer(data_seg.buf, dtype=np.uint8)
    pbuf = np.frombuffer(parity_seg.buf, dtype=np.uint8)
    ins = [dbuf[j * data_stride + start : j * data_stride + end] for j in range(k)]
    outs = [
        pbuf[i * parity_stride + start : i * parity_stride + end] for i in range(m)
    ]
    code.encode_bitmatrix_into(ins, outs)
    return (os.getpid(), t0, time.perf_counter())


# ---------------------------------------------------------------------------
# Parent side.
# ---------------------------------------------------------------------------


def _cleanup_state(state: dict) -> None:
    """Idempotent teardown shared by close(), crash paths and the finalizer."""
    pool = state.get("pool")
    state["pool"] = None
    if pool is not None:
        pool.shutdown(wait=True, cancel_futures=True)
    segments = state.get("segments") or []
    state["segments"] = []
    for seg in segments:
        try:
            seg.close()
        except BufferError:  # a caller still holds a view; unlink anyway
            pass
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


class SharedMemoryProcessPoolEncoder:
    """Encode ``k`` blocks across worker processes over shared memory.

    Byte-identical to ``code.encode`` (the same guarantee — and the same
    stripe splitting — as :class:`~repro.ec.threadpool.ThreadPoolEncoder`),
    but immune to the GIL: each worker process drives the compiled
    schedule over its stripe of the shared segments.

    Args:
        code: the erasure code to apply (needs the bitmatrix kernel path
            for the pooled route; anything else falls back to serial).
        workers: pool size (default: ``min(4, cpu_count)``).
        min_subtask_bytes: stripe floor; stripes smaller than this are
            merged so small buffers skip process overhead entirely.
        mp_context: multiprocessing start method (default ``"spawn"`` —
            fork would duplicate whatever threads the parent happens to
            be running; workers are persistent so the startup cost is
            paid once).
    """

    def __init__(
        self,
        code: ErasureCode,
        workers: int | None = None,
        min_subtask_bytes: int = DEFAULT_MIN_SUBTASK_BYTES,
        mp_context: str = "spawn",
    ):
        if workers is None:
            workers = min(4, os.cpu_count() or 1)
        if workers < 1:
            raise CodeConfigError(f"workers must be >= 1, got {workers}")
        self.code = code
        self.workers = workers
        self.min_subtask_bytes = min_subtask_bytes
        self.last_stats: EncodeStats | None = None
        self._ctx = get_context(mp_context)
        self._stride = 0
        self._alloc_shape: tuple[int, int] | None = None
        # Pool + segments live in a dict shared with the finalizer so
        # teardown never needs (and never resurrects) ``self``.
        self._state: dict = {"pool": None, "segments": []}
        self._finalizer = weakref.finalize(self, _cleanup_state, self._state)

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Shut the pool down and unlink the shared segments."""
        _cleanup_state(self._state)

    def __enter__(self) -> "SharedMemoryProcessPoolEncoder":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def reconfigure(self, code: ErasureCode) -> None:
        """Swap to a new code shape, releasing the old segments.

        The worker pool survives (workers cache codes per shape); the
        segments are unlinked immediately — encode is synchronous, so no
        worker can hold a stripe of them mid-flight — and the next encode
        allocates fresh ones sized for the new ``(k, m)``.  This is the
        hook the elastic path must call instead of resizing buffers under
        a live pool.
        """
        self.code = code
        self._release_segments()

    def _release_segments(self) -> None:
        segments = self._state["segments"]
        self._state["segments"] = []
        self._stride = 0
        self._alloc_shape = None
        for seg in segments:
            try:
                seg.close()
            except BufferError:
                pass
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass

    def segment_names(self) -> list[str]:
        """Names of the live segments (test hook for leak checks)."""
        return [seg.name for seg in self._state["segments"]]

    def _pool(self) -> ProcessPoolExecutor:
        pool = self._state["pool"]
        if pool is None:
            pool = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=self._ctx
            )
            self._state["pool"] = pool
        return pool

    def _ensure_segments(self, size: int) -> None:
        k, m = self.code.params.k, self.code.params.m
        if (
            self._alloc_shape == (k, m)
            and self._stride >= size
            and self._state["segments"]
        ):
            return
        self._release_segments()
        stride = _round_slot(size)
        tag = f"{SEGMENT_PREFIX}-{os.getpid()}-{uuid.uuid4().hex[:8]}"
        data = shared_memory.SharedMemory(
            create=True, size=k * stride, name=f"{tag}-d"
        )
        parity = shared_memory.SharedMemory(
            create=True, size=m * stride, name=f"{tag}-p"
        )
        self._state["segments"] = [data, parity]
        self._stride = stride
        self._alloc_shape = (k, m)

    # -- encode ----------------------------------------------------------

    def _can_fast_path(self, size: int) -> bool:
        return (
            hasattr(self.code, "encode_bitmatrix_into")
            and self.code.params.m > 0
            and size > 0
            and size % self.code.params.w == 0
        )

    def encode(self, data_blocks: list[np.ndarray]) -> list[np.ndarray]:
        """Parallel encode; returns ``m`` parity blocks, byte-identical to
        ``code.encode(data_blocks)``.

        Raises:
            EncodeError: if the worker pool died mid-call (the segments
                are released and the pool respawns on the next encode).
        """
        params = self.code.params
        blocks = [
            np.ascontiguousarray(b, dtype=np.uint8).ravel() for b in data_blocks
        ]
        if len(blocks) != params.k:
            raise CodeConfigError(
                f"expected {params.k} blocks, got {len(blocks)}"
            )
        size = blocks[0].nbytes
        if any(b.nbytes != size for b in blocks):
            raise CodeConfigError("data blocks differ in size")
        fast = self._can_fast_path(size)
        ranges = (
            split_ranges(size, self.workers, self.min_subtask_bytes, params.w)
            if fast
            else [(0, size)]
        )
        if not fast:
            mode = "serial"
        elif self.workers == 1 or len(ranges) == 1:
            mode = "single"
        else:
            mode = "pool"

        tracer = obs.get_tracer()
        with tracer.span(
            "procpool.encode",
            nbytes=size * params.k,
            sub_tasks=len(ranges) if mode == "pool" else 1,
            workers=self.workers,
            fast_path=fast,
            mode=mode,
        ) as span:
            if mode == "serial":
                parity = self.code.encode(blocks)
                worker_times: list[tuple[int, float, float]] = []
            elif mode == "single":
                parity = [np.empty(size, dtype=np.uint8) for _ in range(params.m)]
                self.code.encode_bitmatrix_into(blocks, parity)
                worker_times = []
            else:
                parity, worker_times = self._encode_pooled(blocks, size, ranges)
        self.last_stats = EncodeStats(
            sub_tasks=len(ranges) if mode == "pool" else 1,
            bytes_encoded=size * params.k,
            threads=self.workers,
            fast_path=fast,
            mode=mode,
            backend="process",
        )
        if tracer.enabled:
            metrics = tracer.metrics
            metrics.counter("procpool.calls").inc()
            metrics.counter("procpool.bytes_encoded").inc(size * params.k)
            metrics.counter("procpool.sub_tasks").inc(self.last_stats.sub_tasks)
            metrics.counter(f"procpool.mode_{mode}_calls").inc()
            for (pid, t0, t1), (start, end) in zip(worker_times, ranges):
                tracer.record_span(
                    "procpool.worker",
                    parent=span,
                    start_s=tracer.rel_time(t0),
                    wall_s=max(t1 - t0, 0.0),
                    thread=f"pid-{pid}",
                    pid=pid,
                    nbytes=(end - start) * params.k,
                )
        return parity

    def _encode_pooled(
        self, blocks: list[np.ndarray], size: int, ranges: list[tuple[int, int]]
    ) -> tuple[list[np.ndarray], list[tuple[int, float, float]]]:
        params = self.code.params
        self._ensure_segments(size)
        data_seg, parity_seg = self._state["segments"]
        stride = self._stride
        good = bool(getattr(self.code, "good_matrix", False))
        # Stage the input blocks into the data segment (one memcpy each;
        # workers then touch only their stripe, zero-copy).
        dview = np.frombuffer(data_seg.buf, dtype=np.uint8)
        for j, block in enumerate(blocks):
            np.copyto(dview[j * stride : j * stride + size], block)
        tasks = [
            (
                data_seg.name,
                parity_seg.name,
                params.k,
                params.m,
                params.w,
                good,
                stride,
                stride,
                start,
                end,
            )
            for start, end in ranges
        ]
        pool = self._pool()
        try:
            futures = [pool.submit(_worker_encode, task) for task in tasks]
            worker_times = [future.result() for future in futures]
        except BrokenProcessPool as exc:
            # A worker died (OOM-kill, segfault, os._exit): the executor
            # is unusable.  Tear everything down — segments included, so
            # nothing leaks in /dev/shm — and let the caller decide; the
            # next encode() respawns a fresh pool and fresh segments.
            del dview
            self.close()
            raise EncodeError(
                f"process-pool worker died during encode: {exc}"
            ) from exc
        pview = np.frombuffer(parity_seg.buf, dtype=np.uint8)
        parity = [
            np.array(pview[i * stride : i * stride + size])
            for i in range(params.m)
        ]
        del dview, pview
        return parity, worker_times


def make_encoder(
    code: ErasureCode,
    backend: str = "thread",
    threads: int = 4,
    min_subtask_bytes: int | None = None,
) -> ThreadPoolEncoder | SharedMemoryProcessPoolEncoder:
    """Encoder factory behind the engine's ``encoder_backend`` config knob.

    ``"thread"`` (default) builds the adaptive :class:`ThreadPoolEncoder`;
    ``"process"`` builds a :class:`SharedMemoryProcessPoolEncoder` with
    ``threads`` worker processes.  Both expose the same dispatch surface
    (``encode``, ``last_stats``) and the same byte-identity guarantee.
    """
    if backend == "process":
        return SharedMemoryProcessPoolEncoder(
            code,
            workers=threads,
            min_subtask_bytes=(
                DEFAULT_MIN_SUBTASK_BYTES
                if min_subtask_bytes is None
                else min_subtask_bytes
            ),
        )
    if backend == "thread":
        return ThreadPoolEncoder(
            code,
            threads=threads,
            min_subtask_bytes=4096 if min_subtask_bytes is None else min_subtask_bytes,
        )
    raise CodeConfigError(
        f"unknown encoder backend {backend!r} (expected 'thread' or 'process')"
    )

"""Observability layer: span tracing, metrics, structured event logs.

Off by default: :func:`get_tracer` returns a shared no-op
:class:`~repro.obs.tracer.NullTracer`, so instrumented code costs one
attribute test per call site until :func:`install` (or the
:func:`use_tracer` context manager) activates a collecting
:class:`~repro.obs.tracer.Tracer`.

Typical use::

    from repro import obs

    with obs.use_tracer(obs.Tracer()) as tracer:
        engine.save()
    obs.write_jsonl(tracer, "TRACE_run.jsonl", engine=engine.name)
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs import metrics as _metrics_mod
from repro.obs.alerts import AlertEngine, AlertRule, default_fleet_rules
from repro.obs.critical_path import (
    IdleSlotReport,
    PipelineCriticalPath,
    TraceAnalysis,
    analyze_trace,
    idle_slot_report,
    pipeline_critical_path,
    render_analysis,
    thread_utilization,
    tier_byte_flow,
)
from repro.obs.dashboard import render_dashboard, write_dashboard
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.provenance import provenance_stamp
from repro.obs.timeseries import (
    SeriesBuffer,
    TenantSeries,
    TimeSeriesSampler,
    crosscheck_timeline,
    use_sampler,
)
from repro.obs.regression import (
    MetricDelta,
    RegressionResult,
    append_history,
    check_regression,
    history_entry,
    load_history,
)
from repro.obs.trace_export import (
    export_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.trace_io import (
    Trace,
    crosscheck_totals,
    load_trace,
    phase_totals,
    summarize,
    validate_spans,
    write_jsonl,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer

_TRACER = NULL_TRACER


def get_tracer():
    """The active tracer; a shared no-op unless one was installed."""
    return _TRACER


def install(tracer: Optional[Tracer]) -> None:
    """Activate ``tracer`` globally (``None`` restores the no-op default).

    Also publishes the tracer's metrics registry to the hot-path guard
    in :mod:`repro.obs.metrics`.
    """
    global _TRACER
    if tracer is None:
        _TRACER = NULL_TRACER
        _metrics_mod._set_active(None)
    else:
        _TRACER = tracer
        _metrics_mod._set_active(tracer.metrics)


@contextmanager
def use_tracer(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Install a tracer for the duration of a block, then restore."""
    tracer = tracer if tracer is not None else Tracer()
    previous = _TRACER
    install(tracer)
    try:
        yield tracer
    finally:
        install(previous if previous is not NULL_TRACER else None)


def record_phases(tracer, parent, breakdown, kind: str) -> None:
    """Attach one phase-tagged child span per breakdown entry.

    For engines whose save/restore work is not naturally bracketed (the
    analytic phase times only exist once the report is built), this
    materialises the report's ``breakdown`` as zero-wall spans carrying
    the simulated durations, so trace phase totals reconcile with report
    breakdowns by construction.  Must run while ``parent`` is still open
    so the children nest inside its wall interval.
    """
    if not tracer.enabled:
        return
    for phase, seconds in breakdown.items():
        with tracer.span(
            f"{parent.name}.{phase}", parent=parent, kind=kind, phase=phase
        ) as span:
            pass
        span.add_sim(float(seconds))


__all__ = [
    "AlertEngine",
    "AlertRule",
    "Counter",
    "Gauge",
    "Histogram",
    "IdleSlotReport",
    "MetricDelta",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "PipelineCriticalPath",
    "RegressionResult",
    "SeriesBuffer",
    "Span",
    "TenantSeries",
    "TimeSeriesSampler",
    "Trace",
    "TraceAnalysis",
    "Tracer",
    "analyze_trace",
    "append_history",
    "check_regression",
    "crosscheck_timeline",
    "crosscheck_totals",
    "default_fleet_rules",
    "export_chrome_trace",
    "get_tracer",
    "history_entry",
    "idle_slot_report",
    "install",
    "load_history",
    "load_trace",
    "phase_totals",
    "pipeline_critical_path",
    "provenance_stamp",
    "record_phases",
    "render_analysis",
    "render_dashboard",
    "tier_byte_flow",
    "summarize",
    "thread_utilization",
    "use_sampler",
    "use_tracer",
    "validate_chrome_trace",
    "validate_spans",
    "write_chrome_trace",
    "write_dashboard",
    "write_jsonl",
]

"""Chrome-trace / Perfetto export of JSONL traces.

Converts a parsed :class:`~repro.obs.trace_io.Trace` into the Chrome
trace-event JSON format (the ``chrome://tracing`` / Perfetto "JSON v1"
schema): one ``"X"`` complete event per span, one ``"i"`` instant event
per point event (crash points, checkpoints, recoveries), and ``"M"``
metadata events naming the tracks.

Two processes ("pid"s) structure the view:

* **pid 1 — wall clock.**  Spans land on one track per Python thread
  (``MainThread``, the three ``eccheck-*`` pipeline stage threads, the
  ``ThreadPoolEncoder`` workers), at their measured ``start``/``wall_s``,
  so the genuine thread overlap of the encode→XOR→P2P pipeline is
  visible exactly as it executed.
* **pid 2 — sim time.**  The simulated ``TimeModel`` durations have no
  start timestamps (phases are costed analytically once a save
  completes), so the exporter lays the top-level save/backup/restore
  spans end to end on a cumulative sim-time axis, with each one's
  phase-tagged children laid out sequentially inside it on per-phase
  tracks.  The result reads as the modelled cluster's timeline: how long
  each save *would* take at full scale, phase by phase.

All timestamps are microseconds, the unit the trace-event schema
specifies.  Every emitted event carries ``ph``/``ts``/``pid``/``tid``
(plus ``dur`` for ``"X"``), the fields Perfetto's JSON importer requires.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List

from repro.obs.trace_io import Trace

#: Chrome trace events express time in microseconds.
_US = 1e6

WALL_PID = 1
SIM_PID = 2

#: Tracks of the sim-time process: top-level reports, then phases.
_SIM_ROOT_TID = 0


def _thread_tids(rows: Iterable[Dict[str, Any]]) -> Dict[str, int]:
    """Stable thread-name -> tid mapping; MainThread pinned to 0."""
    tids: Dict[str, int] = {"MainThread": 0}
    for row in rows:
        name = row.get("thread") or "MainThread"
        if name not in tids:
            tids[name] = len(tids)
    return tids


def _category(name: str) -> str:
    """Event category from the span-name prefix (engine/pipeline/...)."""
    return name.split(".", 1)[0]


def _metadata(pid: int, name: str, tid: int = 0, kind: str = "process_name") -> Dict[str, Any]:
    return {
        "ph": "M",
        "name": kind,
        "ts": 0,
        "pid": pid,
        "tid": tid,
        "args": {"name": name},
    }


def _wall_events(trace: Trace) -> List[Dict[str, Any]]:
    tids = _thread_tids([*trace.spans, *trace.events])
    out: List[Dict[str, Any]] = [_metadata(WALL_PID, "wall clock")]
    for thread, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        out.append(_metadata(WALL_PID, thread, tid, "thread_name"))
    for span in trace.spans:
        attrs = dict(span.get("attrs") or {})
        if span.get("sim_s") is not None:
            attrs["sim_s"] = span["sim_s"]
        out.append(
            {
                "ph": "X",
                "name": span["name"],
                "cat": _category(span["name"]),
                "ts": span["start"] * _US,
                "dur": (span["wall_s"] or 0.0) * _US,
                "pid": WALL_PID,
                "tid": tids.get(span.get("thread") or "MainThread", 0),
                "args": attrs,
            }
        )
    for event in trace.events:
        out.append(
            {
                "ph": "i",
                "name": event["name"],
                "cat": "event",
                "ts": event["t"] * _US,
                "pid": WALL_PID,
                "tid": tids.get(event.get("thread") or "MainThread", 0),
                "s": "t",
                "args": dict(event.get("fields") or {}),
            }
        )
    return out


def _sim_events(trace: Trace) -> List[Dict[str, Any]]:
    """Lay costed report spans (and their phases) on a sim-time axis."""
    # A report root is a costed span tagged with a save/restore kind that
    # is not itself a phase child.  Restore spans nest under the manager's
    # ``manager.recovery`` wrapper, so "no parent" is not the criterion.
    roots = [
        s
        for s in trace.spans
        if (s.get("attrs") or {}).get("kind") is not None
        and (s.get("attrs") or {}).get("phase") is None
        and s.get("sim_s") is not None
    ]
    if not roots:
        return []
    roots.sort(key=lambda s: s["start"])
    children: Dict[int, List[Dict[str, Any]]] = {}
    for span in trace.spans:
        parent = span.get("parent")
        if parent is not None:
            children.setdefault(parent, []).append(span)

    out: List[Dict[str, Any]] = [
        _metadata(SIM_PID, "sim time"),
        _metadata(SIM_PID, "reports", _SIM_ROOT_TID, "thread_name"),
    ]
    phase_tids: Dict[str, int] = {}
    cursor = 0.0
    for root in roots:
        out.append(
            {
                "ph": "X",
                "name": root["name"],
                "cat": _category(root["name"]),
                "ts": cursor * _US,
                "dur": root["sim_s"] * _US,
                "pid": SIM_PID,
                "tid": _SIM_ROOT_TID,
                "args": dict(root.get("attrs") or {}),
            }
        )
        # Phase children in wall start order reproduce execution order
        # (step1 -> step3 -> step2 for eccheck saves).
        offset = cursor
        phase_children = [
            c
            for c in sorted(children.get(root["id"], []), key=lambda s: s["start"])
            if (c.get("attrs") or {}).get("phase") and c.get("sim_s") is not None
        ]
        for child in phase_children:
            phase = child["attrs"]["phase"]
            if phase not in phase_tids:
                tid = len(phase_tids) + 1
                phase_tids[phase] = tid
                out.append(_metadata(SIM_PID, phase, tid, "thread_name"))
            out.append(
                {
                    "ph": "X",
                    "name": phase,
                    "cat": "phase",
                    "ts": offset * _US,
                    "dur": child["sim_s"] * _US,
                    "pid": SIM_PID,
                    "tid": phase_tids[phase],
                    "args": dict(child.get("attrs") or {}),
                }
            )
            offset += child["sim_s"]
        cursor += root["sim_s"]
    return out


def export_chrome_trace(trace: Trace) -> Dict[str, Any]:
    """The Chrome trace-event document for a parsed trace."""
    events = _wall_events(trace) + _sim_events(trace)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "meta": {k: v for k, v in trace.meta.items() if k != "type"},
            "metrics": trace.metrics,
        },
    }


def write_chrome_trace(trace: Trace, path: str) -> int:
    """Write the export to ``path``; returns the number of trace events."""
    doc = export_chrome_trace(trace)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1)
    return len(doc["traceEvents"])


def validate_chrome_trace(doc: Dict[str, Any]) -> List[str]:
    """Schema check on an export; returns a list of problems.

    Verifies the required top-level shape and that every event carries
    the fields the Perfetto JSON importer needs: ``ph``/``ts``/``pid``/
    ``tid``, a ``dur`` on complete events, and a scope on instants.
    """
    problems: List[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    for i, event in enumerate(events):
        for key in ("ph", "ts", "pid", "tid"):
            if key not in event:
                problems.append(f"event {i}: missing {key!r}")
        ph = event.get("ph")
        if ph not in ("X", "i", "M"):
            problems.append(f"event {i}: unknown phase {ph!r}")
        if ph == "X":
            if not isinstance(event.get("dur"), (int, float)) or event["dur"] < 0:
                problems.append(f"event {i}: X event needs non-negative dur")
        if ph == "i" and event.get("s") not in ("t", "p", "g"):
            problems.append(f"event {i}: instant needs scope s in t/p/g")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"event {i}: bad ts {ts!r}")
    return problems

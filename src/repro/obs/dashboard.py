"""Self-contained HTML dashboard for fleet telemetry.

``render_dashboard`` turns a fleet report dict (the parsed
``FLEET_report.json``) into ONE html file: inline CSS, inline SVG charts
and a few lines of inline JS for collapsing alert detail — zero external
resources, zero network requests, so the artifact opens anywhere
(CI artifact viewers, ``file://`` URLs, air-gapped boxes).

Charts per episode that carries a ``timeline`` section:

* fleet timeline — line chart of the fleet-wide signals with domain
  events (vertical dashes) and alert annotations (markers);
* bandwidth-share stack — per-tenant remote-store shares resampled onto
  the fleet time grid and stacked;
* tier byte-flow — host / disk / remote byte counters over time;
* tenant swimlanes — one lane per tenant from admit to exit, degraded
  windows shaded, tenant-scoped alerts marked;
* alert table — every fired alert with its flight recorder behind a
  ``<details>`` fold.

Everything is computed from the report dict; the renderer holds no
state and never touches the filesystem except in :func:`write_dashboard`.
"""

from __future__ import annotations

import html
import json
from typing import List, Optional, Sequence

#: Qualitative palette (colorblind-safe-ish, dark-on-light).
PALETTE = (
    "#4269d0", "#efb118", "#ff725c", "#6cc5b0", "#3ca951",
    "#ff8ab7", "#a463f2", "#97bbf5", "#9c6b4e", "#9498a0",
)

#: Cap on swimlane rows; lanes are ranked by degraded time so the
#: interesting tenants survive truncation.
MAX_LANES = 48

_SEVERITY_COLOR = {"violation": "#d62728", "warning": "#b8860b"}


def _fmt(value: float) -> str:
    """Compact axis-label formatting (1.5k, 2.3M, ...)."""
    value = float(value)
    for cut, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(value) >= cut:
            return f"{value / cut:.3g}{suffix}"
    return f"{value:.4g}"


def _esc(text) -> str:
    return html.escape(str(text), quote=True)


class _Frame:
    """Maps data coordinates into an SVG plot frame."""

    def __init__(
        self,
        t_lo: float,
        t_hi: float,
        v_lo: float,
        v_hi: float,
        width: int = 860,
        height: int = 220,
        margin_left: int = 58,
        margin_bottom: int = 26,
        margin_top: int = 10,
        margin_right: int = 12,
    ) -> None:
        self.t_lo, self.t_hi = t_lo, max(t_hi, t_lo + 1e-9)
        self.v_lo, self.v_hi = v_lo, max(v_hi, v_lo + 1e-9)
        self.width, self.height = width, height
        self.x0, self.x1 = margin_left, width - margin_right
        self.y0, self.y1 = height - margin_bottom, margin_top

    def x(self, t: float) -> float:
        frac = (t - self.t_lo) / (self.t_hi - self.t_lo)
        return self.x0 + frac * (self.x1 - self.x0)

    def y(self, v: float) -> float:
        frac = (v - self.v_lo) / (self.v_hi - self.v_lo)
        return self.y0 + frac * (self.y1 - self.y0)

    def axes(self, v_ticks: int = 4, t_ticks: int = 6) -> List[str]:
        parts = [
            f'<line x1="{self.x0}" y1="{self.y0:.1f}" x2="{self.x1}" '
            f'y2="{self.y0:.1f}" class="axis"/>',
            f'<line x1="{self.x0}" y1="{self.y0:.1f}" x2="{self.x0}" '
            f'y2="{self.y1:.1f}" class="axis"/>',
        ]
        for i in range(v_ticks + 1):
            v = self.v_lo + (self.v_hi - self.v_lo) * i / v_ticks
            y = self.y(v)
            parts.append(
                f'<line x1="{self.x0 - 3}" y1="{y:.1f}" x2="{self.x1}" '
                f'y2="{y:.1f}" class="grid"/>'
            )
            parts.append(
                f'<text x="{self.x0 - 6}" y="{y + 3:.1f}" '
                f'class="tick" text-anchor="end">{_fmt(v)}</text>'
            )
        for i in range(t_ticks + 1):
            t = self.t_lo + (self.t_hi - self.t_lo) * i / t_ticks
            x = self.x(t)
            parts.append(
                f'<text x="{x:.1f}" y="{self.y0 + 16:.1f}" class="tick" '
                f'text-anchor="middle">{_fmt(t / 3600.0)}h</text>'
            )
        return parts


def _polyline(frame: _Frame, ts: Sequence[float], vs: Sequence[float],
              color: str, title: str = "") -> str:
    if not ts:
        return ""
    points = " ".join(
        f"{frame.x(t):.1f},{frame.y(v):.1f}" for t, v in zip(ts, vs)
    )
    tip = f"<title>{_esc(title)}</title>" if title else ""
    return (
        f'<polyline points="{points}" fill="none" stroke="{color}" '
        f'stroke-width="1.6">{tip}</polyline>'
    )


def _legend(names: Sequence[str], colors: Sequence[str]) -> str:
    chips = "".join(
        f'<span class="chip"><span class="swatch" '
        f'style="background:{color}"></span>{_esc(name)}</span>'
        for name, color in zip(names, colors)
    )
    return f'<div class="legend">{chips}</div>'


def _event_markers(frame: _Frame, events: Sequence[dict]) -> List[str]:
    parts = []
    for event in events:
        t = event.get("t", 0.0)
        if not (frame.t_lo <= t <= frame.t_hi):
            continue
        x = frame.x(t)
        label = event.get("domain") or event.get("tenant") or event.get("kind")
        parts.append(
            f'<line x1="{x:.1f}" y1="{frame.y1}" x2="{x:.1f}" '
            f'y2="{frame.y0}" class="event">'
            f"<title>{_esc(event.get('kind'))} {_esc(label)} "
            f"@ {_fmt(t)}s</title></line>"
        )
    return parts


def _alert_markers(frame: _Frame, alerts: Sequence[dict]) -> List[str]:
    parts = []
    for alert in alerts:
        t = alert.get("t", 0.0)
        if not (frame.t_lo <= t <= frame.t_hi):
            continue
        x = frame.x(t)
        color = _SEVERITY_COLOR.get(alert.get("severity"), "#b8860b")
        parts.append(
            f'<path d="M {x:.1f} {frame.y1 + 2} l 5 9 l -10 0 z" '
            f'fill="{color}"><title>{_esc(alert.get("rule"))} '
            f'({_esc(alert.get("severity"))}) '
            f'{_esc(alert.get("tenant", "fleet"))} @ {_fmt(t)}s: '
            f'{_esc(alert.get("signal"))}={_fmt(alert.get("value", 0.0))}'
            f"</title></path>"
        )
    return parts


def _svg(frame: _Frame, body: List[str]) -> str:
    return (
        f'<svg viewBox="0 0 {frame.width} {frame.height}" '
        f'width="{frame.width}" height="{frame.height}" '
        f'xmlns="http://www.w3.org/2000/svg">' + "".join(body) + "</svg>"
    )


def _section(title: str, body: str) -> str:
    return f"<section><h2>{_esc(title)}</h2>{body}</section>"


def _line_chart(
    ts: Sequence[float],
    series: dict,
    events: Sequence[dict] = (),
    alerts: Sequence[dict] = (),
) -> str:
    if not ts:
        return '<p class="empty">no samples</p>'
    v_hi = max((max(vs) for vs in series.values() if vs), default=1.0)
    frame = _Frame(ts[0], ts[-1], 0.0, v_hi * 1.05 or 1.0)
    body = frame.axes()
    body += _event_markers(frame, events)
    names, colors = [], []
    for i, (name, vs) in enumerate(series.items()):
        color = PALETTE[i % len(PALETTE)]
        names.append(name)
        colors.append(color)
        body.append(_polyline(frame, ts, vs, color, title=name))
    body += _alert_markers(frame, alerts)
    return _svg(frame, body) + _legend(names, colors)


def _resample(ts: Sequence[float], vs: Sequence[float],
              grid: Sequence[float]) -> List[float]:
    """Step-function lookup of (ts, vs) onto ``grid`` (previous value)."""
    out, j, last = [], 0, 0.0
    for t in grid:
        while j < len(ts) and ts[j] <= t:
            last = vs[j]
            j += 1
        out.append(last if j else 0.0)
    return out


def _stack_chart(grid: Sequence[float], tenants: dict, signal: str) -> str:
    """Stacked area of one per-tenant signal on the fleet time grid."""
    if not grid:
        return '<p class="empty">no samples</p>'
    layers = []
    for name, payload in tenants.items():
        vs = payload.get("series", {}).get(signal)
        if vs and any(vs):
            layers.append(
                (name, _resample(payload.get("t", []), vs, grid))
            )
    if not layers:
        return '<p class="empty">no bandwidth claims sampled</p>'
    totals = [0.0] * len(grid)
    stacked = []
    for name, vs in layers:
        base = list(totals)
        totals = [a + b for a, b in zip(totals, vs)]
        stacked.append((name, base, list(totals)))
    frame = _Frame(grid[0], grid[-1], 0.0, max(max(totals), 1.0) * 1.05)
    body = frame.axes()
    names, colors = [], []
    for i, (name, lo, hi) in enumerate(stacked):
        color = PALETTE[i % len(PALETTE)]
        names.append(name)
        colors.append(color)
        upper = " ".join(
            f"{frame.x(t):.1f},{frame.y(v):.1f}" for t, v in zip(grid, hi)
        )
        lower = " ".join(
            f"{frame.x(t):.1f},{frame.y(v):.1f}"
            for t, v in zip(reversed(grid), reversed(lo))
        )
        body.append(
            f'<polygon points="{upper} {lower}" fill="{color}" '
            f'fill-opacity="0.65" stroke="none">'
            f"<title>{_esc(name)}</title></polygon>"
        )
    if len(names) > 10:
        names, colors = names[:10] + [f"... {len(names) - 10} more"], \
            list(colors[:10]) + ["#ccc"]
    return _svg(frame, body) + _legend(names, colors)


def _degraded_intervals(payload: dict, t_end: float) -> List[tuple]:
    """(start, end) degraded windows from a tenant's transition log."""
    intervals, open_at = [], None
    for transition in payload.get("transitions", []):
        if transition["kind"] == "degraded":
            if open_at is None:
                open_at = transition["t"]
        elif open_at is not None:
            intervals.append((open_at, transition["t"]))
            open_at = None
    if open_at is not None:
        intervals.append((open_at, t_end))
    return intervals


def _swimlanes(timeline: dict, alerts: Sequence[dict]) -> str:
    tenants = timeline.get("tenants", {})
    if not tenants:
        return '<p class="empty">no tenants sampled</p>'
    ranked = sorted(
        tenants.items(),
        key=lambda kv: (
            -(kv[1].get("degraded_integral_closed_s", 0.0)
              + kv[1].get("degraded_open_tail_s", 0.0)),
            kv[0],
        ),
    )
    shown = ranked[:MAX_LANES]
    fleet_t = timeline.get("fleet", {}).get("t", [])
    t_lo = fleet_t[0] if fleet_t else 0.0
    t_hi = fleet_t[-1] if fleet_t else 1.0
    lane_h = 14
    height = 30 + lane_h * len(shown) + 24
    frame = _Frame(t_lo, t_hi, 0.0, 1.0, height=height,
                   margin_left=150, margin_top=8, margin_bottom=22)
    parts = []
    by_tenant: dict = {}
    for alert in alerts:
        if alert.get("tenant"):
            by_tenant.setdefault(alert["tenant"], []).append(alert)
    for i, (name, payload) in enumerate(shown):
        y = frame.y1 + 8 + i * lane_h
        ts = payload.get("t", [])
        if not ts:
            continue
        x_lo, x_hi = frame.x(ts[0]), frame.x(ts[-1])
        parts.append(
            f'<text x="{frame.x0 - 6}" y="{y + 9:.1f}" class="tick" '
            f'text-anchor="end">{_esc(name)}</text>'
        )
        parts.append(
            f'<rect x="{x_lo:.1f}" y="{y}" width="{max(x_hi - x_lo, 1):.1f}" '
            f'height="{lane_h - 4}" class="lane">'
            f"<title>{_esc(name)}: {_fmt(ts[0])}s - {_fmt(ts[-1])}s"
            f"</title></rect>"
        )
        for start, end in _degraded_intervals(payload, ts[-1]):
            x_s, x_e = frame.x(start), frame.x(end)
            parts.append(
                f'<rect x="{x_s:.1f}" y="{y}" '
                f'width="{max(x_e - x_s, 1):.1f}" height="{lane_h - 4}" '
                f'class="degraded"><title>{_esc(name)} degraded '
                f"{_fmt(end - start)}s</title></rect>"
            )
        for alert in by_tenant.get(name, []):
            x = frame.x(alert.get("t", 0.0))
            color = _SEVERITY_COLOR.get(alert.get("severity"), "#b8860b")
            parts.append(
                f'<path d="M {x:.1f} {y - 1} l 4 7 l -8 0 z" fill="{color}">'
                f'<title>{_esc(alert.get("rule"))} @ '
                f'{_fmt(alert.get("t", 0.0))}s</title></path>'
            )
    for i in range(7):
        t = t_lo + (t_hi - t_lo) * i / 6
        x = frame.x(t)
        parts.append(
            f'<text x="{x:.1f}" y="{height - 6}" class="tick" '
            f'text-anchor="middle">{_fmt(t / 3600.0)}h</text>'
        )
    note = (
        f'<p class="note">showing {len(shown)} of {len(tenants)} tenants '
        f"(ranked by degraded time)</p>" if len(shown) < len(tenants) else ""
    )
    return _svg(frame, parts) + note


def _alert_table(alerts_block: Optional[dict]) -> str:
    if not alerts_block:
        return '<p class="empty">telemetry ran without an alert engine</p>'
    fired = alerts_block.get("fired", [])
    counts = alerts_block.get("counts", {})
    header = (
        f'<p>{counts.get("total", 0)} alert(s): '
        f'{counts.get("violation", 0)} violation, '
        f'{counts.get("warning", 0)} warning; '
        f'{alerts_block.get("evaluations", 0)} rule evaluations</p>'
    )
    if not fired:
        return header + '<p class="empty">no alerts fired</p>'
    rows = []
    for i, alert in enumerate(fired):
        color = _SEVERITY_COLOR.get(alert.get("severity"), "#b8860b")
        recorder = alert.get("flight_recorder", {})
        correlated = alert.get("correlated_event")
        context = json.dumps(
            {
                "triggering_samples": alert.get("triggering_samples", []),
                "correlated_event": correlated,
                "flight_recorder": recorder,
            },
            indent=2,
            sort_keys=True,
        )
        correlated_text = (
            f"{correlated.get('kind')} "
            f"{correlated.get('domain', correlated.get('tenant', ''))} "
            f"@ {_fmt(correlated.get('t', 0.0))}s"
            if correlated
            else "-"
        )
        rows.append(
            "<tr>"
            f'<td><span class="sev" style="background:{color}">'
            f'{_esc(alert.get("severity"))}</span></td>'
            f'<td>{_esc(alert.get("rule"))}</td>'
            f'<td>{_esc(alert.get("tenant", "fleet"))}</td>'
            f'<td>{_fmt(alert.get("t", 0.0))}s</td>'
            f'<td><code>{_esc(alert.get("signal"))} = '
            f'{_fmt(alert.get("value", 0.0))} '
            f'(threshold {_fmt(alert.get("threshold", 0.0))})</code></td>'
            f"<td>{_esc(correlated_text)}</td>"
            f'<td><details><summary>last '
            f'{len(recorder.get("t", []))} samples</summary>'
            f"<pre>{_esc(context)}</pre></details></td>"
            "</tr>"
        )
    return header + (
        "<table><thead><tr><th>severity</th><th>rule</th><th>scope</th>"
        "<th>at</th><th>trigger</th><th>correlated event</th>"
        "<th>flight recorder</th></tr></thead><tbody>"
        + "".join(rows)
        + "</tbody></table>"
    )


_CSS = """
body { font: 13px/1.45 system-ui, sans-serif; margin: 24px auto;
       max-width: 960px; color: #1a1a1a; }
h1 { font-size: 20px; } h2 { font-size: 15px; margin: 22px 0 6px; }
section { margin-bottom: 14px; }
.axis { stroke: #444; stroke-width: 1; }
.grid { stroke: #000; stroke-opacity: 0.06; }
.tick { font: 10px system-ui, sans-serif; fill: #555; }
.event { stroke: #d62728; stroke-width: 1; stroke-dasharray: 3 3;
         stroke-opacity: 0.6; }
.lane { fill: #4269d0; fill-opacity: 0.25; }
.degraded { fill: #ff725c; fill-opacity: 0.85; }
.legend { margin: 2px 0 0; }
.chip { margin-right: 10px; white-space: nowrap; font-size: 11px; }
.swatch { display: inline-block; width: 9px; height: 9px;
          margin-right: 3px; border-radius: 2px; }
.sev { color: #fff; padding: 1px 6px; border-radius: 3px; font-size: 11px; }
table { border-collapse: collapse; font-size: 12px; }
td, th { border: 1px solid #ddd; padding: 3px 7px; text-align: left;
         vertical-align: top; }
pre { max-height: 260px; overflow: auto; background: #f6f6f6;
      padding: 6px; font-size: 10px; }
.empty, .note { color: #777; font-style: italic; }
.meta { color: #555; font-size: 12px; }
code { font-size: 11px; }
"""

#: Tiny inline script — keeps <details> folds closed on print, nothing
#: else.  No external requests of any kind.
_JS = """
document.addEventListener('beforeprint',
  () => document.querySelectorAll('details[open]')
    .forEach(d => d.removeAttribute('open')));
"""

_FLEET_CHART_SIGNALS = (
    "running_tenants", "degraded_tenants", "admission_queue",
    "free_slots", "down_slots", "spare_queue",
)


def _episode_sections(episode: dict) -> str:
    timeline = episode.get("timeline")
    if not timeline:
        return _section(
            f"episode {episode.get('episode', '?')}",
            '<p class="empty">no timeline section (run with --timeline)</p>',
        )
    fleet = timeline.get("fleet", {})
    ts = fleet.get("t", [])
    series = fleet.get("series", {})
    events = timeline.get("events", [])
    alerts_block = timeline.get("alerts") or {}
    fired = alerts_block.get("fired", [])
    fleet_alerts = [a for a in fired if not a.get("tenant")]
    chart_series = {
        name: series[name]
        for name in _FLEET_CHART_SIGNALS
        if name in series
    }
    tier_series = {
        name: series[name]
        for name in ("host_bytes", "disk_bytes", "remote_bytes")
        if name in series
    }
    index = episode.get("episode", "?")
    parts = [
        _section(
            f"episode {index} · fleet timeline "
            f"({timeline.get('samples', 0)} samples "
            f"@ {timeline.get('period_s', 0)}s)",
            _line_chart(ts, chart_series, events, fleet_alerts),
        ),
        _section(
            f"episode {index} · remote-bandwidth shares (stacked)",
            _stack_chart(ts, timeline.get("tenants", {}), "share_remote"),
        ),
        _section(
            f"episode {index} · tier byte-flow",
            _line_chart(ts, tier_series, events, []),
        ),
        _section(
            f"episode {index} · tenant swimlanes",
            _swimlanes(timeline, fired),
        ),
        _section(
            f"episode {index} · alerts",
            _alert_table(alerts_block),
        ),
    ]
    return "".join(parts)


def render_dashboard(report: dict, title: str = "fleet telemetry") -> str:
    """One self-contained HTML page for a fleet report dict."""
    config = report.get("config", {})
    aggregates = report.get("aggregates", {})
    provenance = report.get("provenance", {})
    meta_bits = [
        f"jobs={config.get('jobs')}",
        f"episodes={config.get('episodes')}",
        f"seed={config.get('seed')}",
        f"slots={config.get('fleet_slots')}",
        f"arbitration={config.get('arbitration')}",
        f"violations={len(report.get('violations', []))}",
    ]
    if provenance.get("git_sha"):
        meta_bits.append(f"git={str(provenance['git_sha'])[:12]}")
    if aggregates.get("states"):
        meta_bits.append(
            "states: "
            + ", ".join(
                f"{k}={v}" for k, v in aggregates["states"].items()
            )
        )
    episodes = report.get("episodes", [])
    body = "".join(_episode_sections(e) for e in episodes)
    return (
        "<!DOCTYPE html><html><head><meta charset=\"utf-8\">"
        f"<title>{_esc(title)}</title><style>{_CSS}</style></head><body>"
        f"<h1>{_esc(title)}</h1>"
        f'<p class="meta">{_esc(" · ".join(meta_bits))}</p>'
        + body
        + f"<script>{_JS}</script></body></html>"
    )


def write_dashboard(report: dict, path: str,
                    title: str = "fleet telemetry") -> str:
    """Render and write the dashboard; returns ``path``."""
    content = render_dashboard(report, title=title)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(content)
    return path

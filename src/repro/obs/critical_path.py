"""Critical-path, utilization and idle-slot analysis over a trace.

PR 3's crosscheck proves the per-phase totals are *right*; this module
explains where they *go*.  Three analyses over one parsed
:class:`~repro.obs.trace_io.Trace`:

1. **Pipeline critical path** (:func:`pipeline_critical_path`).  The
   three ``PipelinedRunner`` stage spans form a happens-before DAG per
   save: item ``i`` of a stage depends on item ``i`` of the previous
   stage (queue FIFO) and on item ``i-1`` of its own stage (one worker
   thread per stage).  The longest wall-time chain through that DAG is
   the save's critical path — which stage binds the encode→XOR-reduce→
   P2P pipeline.  Overlap efficiency compares the serial sum of stage
   work against the pipeline's actual makespan.

2. **Thread utilization** (:func:`thread_utilization`).  Per worker
   thread, the merged busy intervals of its leaf spans over the trace
   window, via the same interval algebra as
   :mod:`repro.sim.timeline` — how much of the run each pipeline stage
   and encoder worker actually worked.

3. **Idle-slot placement** (:func:`idle_slot_report`).  Rebuilds the
   training iteration timeline the run's cluster shape implies
   (:func:`repro.sim.timeline.pipeline_schedule_timeline`), profiles its
   NIC idle slots, and fits the traced per-checkpoint inter-node volume
   (the ``p2p.bytes_inter_node`` counter) into them with
   :func:`repro.core.scheduler.schedule_checkpoint_comm`.  Reports how
   much checkpoint traffic lands in idle slots versus overflows into
   training time — and, for contrast, how much a naive scheduler that
   starts transfers at iteration start would collide with training
   comms (:func:`repro.sim.timeline.intersect_intervals`).

:func:`analyze_trace` bundles all three plus the per-phase sim totals
(cross-checked against :func:`repro.analysis.breakdown.sum_breakdowns`
aggregates when report breakdowns are supplied) into one plain-dict
report; :func:`render_analysis` prints it for ``repro analyze``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.analysis.breakdown import normalise_breakdown
from repro.errors import ReproError
from repro.obs.trace_io import Trace, crosscheck_totals, phase_totals
from repro.sim.network import TimeModel, gbps
from repro.sim.timeline import (
    Interval,
    intersect_intervals,
    merge_intervals,
    pipeline_schedule_timeline,
    total_duration,
)

#: Stage-span names in pipeline order (see ``repro.core.pipeline``).
PIPELINE_STAGES = ("pipeline.encode", "pipeline.xor_reduce", "pipeline.transfer")


# ---------------------------------------------------------------------------
# 1. Pipeline critical path
# ---------------------------------------------------------------------------
@dataclass
class StageNode:
    """One stage execution of one item inside a pipelined save."""

    stage: int
    item: int
    wall_s: float
    span_id: int


@dataclass
class PipelineCriticalPath:
    """Critical path through one save's three-stage pipeline."""

    parent_id: int
    items: int
    critical_wall_s: float
    path: List[StageNode]
    stage_wall_totals: Dict[str, float]
    serial_wall_s: float
    makespan_wall_s: float

    @property
    def overlap_efficiency(self) -> float:
        """serial work / pipeline makespan; 1.0 = no overlap, 3.0 = ideal."""
        if self.makespan_wall_s <= 0:
            return 1.0
        return self.serial_wall_s / self.makespan_wall_s

    @property
    def bottleneck_stage(self) -> str:
        return max(self.stage_wall_totals, key=self.stage_wall_totals.get)


def _stage_groups(
    spans: Iterable[Dict[str, Any]],
) -> Dict[int, Dict[int, List[Dict[str, Any]]]]:
    """parent span id -> stage index -> stage spans in queue order."""
    groups: Dict[int, Dict[int, List[Dict[str, Any]]]] = {}
    for span in spans:
        if span["name"] not in PIPELINE_STAGES:
            continue
        parent = span.get("parent")
        if parent is None:
            continue
        stage = PIPELINE_STAGES.index(span["name"])
        groups.setdefault(parent, {}).setdefault(stage, []).append(span)
    for stages in groups.values():
        for stage_spans in stages.values():
            stage_spans.sort(key=lambda s: s["start"])
    return groups


def pipeline_critical_path(
    spans: Iterable[Dict[str, Any]],
) -> List[PipelineCriticalPath]:
    """Critical path per pipelined save found in ``spans``.

    Items are matched across stages by queue order (each stage runs on
    one worker thread over FIFO queues, so the i-th span of a stage
    processes the i-th item).  Saves whose stages processed different
    item counts (e.g. torn by an injected crash) are skipped.
    """
    reports: List[PipelineCriticalPath] = []
    for parent_id, stages in sorted(_stage_groups(spans).items()):
        if sorted(stages) != list(range(len(PIPELINE_STAGES))):
            continue
        counts = {len(v) for v in stages.values()}
        if len(counts) != 1:
            continue  # torn save: stages saw different item counts
        (items,) = counts
        if items == 0:
            continue
        wall = {
            (s, i): stages[s][i]["wall_s"] or 0.0
            for s in stages
            for i in range(items)
        }
        # Longest chain: dist[(s, i)] = wall + max(dist upstream).
        dist: Dict[Tuple[int, int], float] = {}
        prev: Dict[Tuple[int, int], Optional[Tuple[int, int]]] = {}
        for i in range(items):
            for s in range(len(PIPELINE_STAGES)):
                best, best_node = 0.0, None
                for dep in ((s, i - 1), (s - 1, i)):
                    if dep in dist and dist[dep] > best:
                        best, best_node = dist[dep], dep
                dist[(s, i)] = best + wall[(s, i)]
                prev[(s, i)] = best_node
        end = max(dist, key=dist.get)
        path: List[StageNode] = []
        node: Optional[Tuple[int, int]] = end
        while node is not None:
            s, i = node
            path.append(
                StageNode(
                    stage=s,
                    item=i,
                    wall_s=wall[node],
                    span_id=stages[s][i]["id"],
                )
            )
            node = prev[node]
        path.reverse()
        all_spans = [span for stage_spans in stages.values() for span in stage_spans]
        starts = [s["start"] for s in all_spans]
        ends = [s["start"] + (s["wall_s"] or 0.0) for s in all_spans]
        reports.append(
            PipelineCriticalPath(
                parent_id=parent_id,
                items=items,
                critical_wall_s=dist[end],
                path=path,
                stage_wall_totals={
                    PIPELINE_STAGES[s]: sum(
                        sp["wall_s"] or 0.0 for sp in stages[s]
                    )
                    for s in stages
                },
                serial_wall_s=sum(wall.values()),
                makespan_wall_s=max(ends) - min(starts),
            )
        )
    return reports


# ---------------------------------------------------------------------------
# 2. Thread busy/idle utilization
# ---------------------------------------------------------------------------
def thread_utilization(
    spans: Iterable[Dict[str, Any]],
) -> Dict[str, Dict[str, float]]:
    """Per-thread busy seconds and busy fraction of the trace window.

    Only leaf spans count as busy time (a parent span covering its
    children would double-count), merged with the interval algebra from
    :mod:`repro.sim.timeline`.
    """
    spans = list(spans)
    if not spans:
        return {}
    has_children = {s["parent"] for s in spans if s.get("parent") is not None}
    window_start = min(s["start"] for s in spans)
    window_end = max(s["start"] + (s["wall_s"] or 0.0) for s in spans)
    window = max(window_end - window_start, 0.0)
    busy: Dict[str, List[Interval]] = {}
    for span in spans:
        if span["id"] in has_children:
            continue
        thread = span.get("thread") or "MainThread"
        busy.setdefault(thread, []).append(
            Interval(span["start"], span["start"] + (span["wall_s"] or 0.0))
        )
    out: Dict[str, Dict[str, float]] = {}
    for thread, intervals in sorted(busy.items()):
        seconds = total_duration(merge_intervals(intervals))
        out[thread] = {
            "busy_s": seconds,
            "busy_fraction": seconds / window if window > 0 else 0.0,
            "spans": float(len(intervals)),
        }
    return out


# ---------------------------------------------------------------------------
# 3. Idle-slot placement of checkpoint communication
# ---------------------------------------------------------------------------
@dataclass
class IdleSlotReport:
    """How traced checkpoint traffic fits the training network's idle slots."""

    iteration_time_s: float
    idle_fraction: float
    saves: int
    interval_iterations: float
    bytes_inter_node_per_save: float
    comm_seconds_per_save: float
    in_idle_seconds: float
    overflow_seconds: float
    in_idle_bytes: float
    collided_bytes: float
    naive_collision_seconds: float
    fits_in_idle: bool

    @property
    def in_idle_fraction(self) -> float:
        if self.comm_seconds_per_save <= 0:
            return 1.0
        return self.in_idle_seconds / self.comm_seconds_per_save


def idle_slot_report(
    trace: Trace,
    stages: Optional[int] = None,
    microbatches: int = 8,
    forward_time: float = 0.35,
    activation_bytes: float = 200e6,
    time_model: Optional[TimeModel] = None,
) -> Optional[IdleSlotReport]:
    """Fit the traced P2P volume into the implied training idle slots.

    Uses the trace meta (engine shape, checkpoint interval) plus the
    ``p2p.bytes_inter_node`` counter; the training timeline comes from
    the same GPipe model Fig. 12 uses, with its default knobs.  Returns
    ``None`` when the trace carries no completed saves or no inter-node
    volume (nothing to schedule).
    """
    # Imported here, not at module scope: ``repro.core`` engines import
    # ``repro.obs`` for instrumentation, so a top-level import would make
    # ``repro.checkpoint.base`` -> obs -> core -> base a circular chain.
    from repro.core.scheduler import profile_idle_slots, schedule_checkpoint_comm

    saves = [
        s
        for s in trace.spans
        if (s.get("attrs") or {}).get("kind") == "save"
        and s.get("parent") is None
        and s.get("sim_s") is not None
    ]
    counters = (trace.metrics or {}).get("counters", {})
    total_bytes = float(counters.get("p2p.bytes_inter_node", 0.0))
    if not saves or total_bytes <= 0:
        return None
    tm = time_model or TimeModel()
    node_count = stages if stages is not None else int(trace.meta.get("nodes", 4))
    timeline = pipeline_schedule_timeline(
        stages=node_count,
        microbatches=microbatches,
        forward_time=forward_time,
        activation_bytes=activation_bytes,
        time_model=tm,
    )
    profile = profile_idle_slots(timeline)
    interval = float(trace.meta.get("interval", 1) or 1)

    per_save_bytes = total_bytes / len(saves)
    per_node_bytes = per_save_bytes / node_count
    comm_seconds = per_node_bytes / gbps(tm.inter_node_gbps)
    outcome = schedule_checkpoint_comm(
        profile,
        {stage: comm_seconds for stage in range(node_count)},
        interval,
    )
    in_idle_seconds = comm_seconds - outcome.overflow_seconds
    bandwidth = gbps(tm.inter_node_gbps)

    # Contrast: a scheduler that just starts the transfer at iteration
    # start overlaps the busiest stage's training comms head-on.
    naive_collision = max(
        total_duration(
            intersect_intervals(
                [Interval(0.0, min(comm_seconds, timeline.iteration_time))],
                timeline.busy_intervals(stage),
            )
        )
        for stage in range(node_count)
    )
    idle_fraction = (
        profile.bottleneck_idle_seconds / timeline.iteration_time
        if timeline.iteration_time > 0
        else 0.0
    )
    return IdleSlotReport(
        iteration_time_s=timeline.iteration_time,
        idle_fraction=idle_fraction,
        saves=len(saves),
        interval_iterations=interval,
        bytes_inter_node_per_save=per_save_bytes,
        comm_seconds_per_save=comm_seconds,
        in_idle_seconds=in_idle_seconds,
        overflow_seconds=outcome.overflow_seconds,
        in_idle_bytes=in_idle_seconds * bandwidth * node_count,
        collided_bytes=outcome.overflow_seconds * bandwidth * node_count,
        naive_collision_seconds=naive_collision,
        fits_in_idle=outcome.fits_in_idle,
    )


# ---------------------------------------------------------------------------
# Per-tier byte flow
# ---------------------------------------------------------------------------
#: Span attributes that carry tier traffic, in storage-hierarchy order.
TIER_BYTE_ATTRS = (
    "bytes_to_disk",
    "bytes_from_disk",
    "bytes_to_remote",
    "bytes_from_remote",
)


def tier_byte_flow(spans: Iterable[Dict[str, Any]]) -> Dict[str, int]:
    """Sum per-tier byte traffic over span attributes.

    Demotion spans carry ``bytes_to_disk``, restore spans
    ``bytes_from_disk``/``bytes_from_remote``, backup saves
    ``bytes_to_remote`` — together the full byte ledger of the tier
    stack, derived purely from the trace.
    """
    flow = {attr: 0 for attr in TIER_BYTE_ATTRS}
    for span in spans:
        attrs = span.get("attrs") or {}
        for key in TIER_BYTE_ATTRS:
            value = attrs.get(key)
            if value:
                flow[key] += int(value)
    return flow


# ---------------------------------------------------------------------------
# Bundled analysis
# ---------------------------------------------------------------------------
@dataclass
class TraceAnalysis:
    """Everything ``repro analyze`` reports for one trace."""

    save_phase_totals: Dict[str, float] = field(default_factory=dict)
    restore_phase_totals: Dict[str, float] = field(default_factory=dict)
    #: Elastic-membership spans: background repair (derive/stream/commit)
    #: and degraded regroups, empty for traces without an elastic run.
    repair_phase_totals: Dict[str, float] = field(default_factory=dict)
    regroup_phase_totals: Dict[str, float] = field(default_factory=dict)
    #: Tier-stack spans: memory -> disk demotions (kind="tier"), empty
    #: for traces without a tier policy.
    tier_phase_totals: Dict[str, float] = field(default_factory=dict)
    #: Per-tier byte traffic summed from span attributes.
    tier_byte_flow: Dict[str, int] = field(default_factory=dict)
    crosscheck_problems: List[str] = field(default_factory=list)
    critical_paths: List[PipelineCriticalPath] = field(default_factory=list)
    utilization: Dict[str, Dict[str, float]] = field(default_factory=dict)
    idle_slots: Optional[IdleSlotReport] = None


def analyze_trace(
    trace: Trace,
    save_breakdowns: Optional[List[Dict[str, float]]] = None,
    restore_breakdowns: Optional[List[Dict[str, float]]] = None,
    repair_breakdowns: Optional[List[Dict[str, float]]] = None,
    regroup_breakdowns: Optional[List[Dict[str, float]]] = None,
    tier_breakdowns: Optional[List[Dict[str, float]]] = None,
    rel_tol: float = 1e-9,
) -> TraceAnalysis:
    """Run every analysis; reconcile against report breakdowns if given.

    ``repair_breakdowns``/``regroup_breakdowns`` come from an elastic
    run's :class:`~repro.elastic.repair.RepairReport` breakdowns and the
    controller's ``regroup_reports``; ``tier_breakdowns`` from a tiered
    run's :class:`~repro.checkpoint.base.DemotionReport` breakdowns.
    Their sim totals must match the trace's matching phase spans to
    ``rel_tol``.

    Raises:
        ReproError: if the trace holds no spans at all.
    """
    if not trace.spans:
        raise ReproError("trace contains no spans; nothing to analyze")
    analysis = TraceAnalysis(
        save_phase_totals=phase_totals(trace.spans, kind="save"),
        restore_phase_totals=phase_totals(trace.spans, kind="restore"),
        repair_phase_totals=phase_totals(trace.spans, kind="repair"),
        regroup_phase_totals=phase_totals(trace.spans, kind="regroup"),
        tier_phase_totals=phase_totals(trace.spans, kind="tier"),
        tier_byte_flow=tier_byte_flow(trace.spans),
        critical_paths=pipeline_critical_path(trace.spans),
        utilization=thread_utilization(trace.spans),
        idle_slots=idle_slot_report(trace),
    )
    for totals, breakdowns in (
        (analysis.save_phase_totals, save_breakdowns),
        (analysis.restore_phase_totals, restore_breakdowns),
        (analysis.repair_phase_totals, repair_breakdowns),
        (analysis.regroup_phase_totals, regroup_breakdowns),
        (analysis.tier_phase_totals, tier_breakdowns),
    ):
        if breakdowns is not None:
            analysis.crosscheck_problems += crosscheck_totals(
                totals, breakdowns, rel_tol
            )
    return analysis


def _phase_lines(title: str, totals: Dict[str, float]) -> List[str]:
    lines = [title]
    if not totals:
        return lines + ["  (none)"]
    shares = (
        normalise_breakdown(totals)
        if sum(totals.values()) > 0
        else {p: 0.0 for p in totals}
    )
    for phase in sorted(totals):
        lines.append(f"  {phase:<28} {totals[phase]:>12.6f}s {shares[phase]:>6.1%}")
    lines.append(f"  {'total':<28} {sum(totals.values()):>12.6f}s")
    return lines


def render_analysis(analysis: TraceAnalysis) -> str:
    """ASCII report for ``repro analyze``."""
    lines: List[str] = []
    lines += _phase_lines("save phases (sim):", analysis.save_phase_totals)
    if analysis.restore_phase_totals:
        lines += _phase_lines("restore phases (sim):", analysis.restore_phase_totals)
    if analysis.repair_phase_totals:
        lines += _phase_lines("repair phases (sim):", analysis.repair_phase_totals)
    if analysis.regroup_phase_totals:
        lines += _phase_lines("regroup phases (sim):", analysis.regroup_phase_totals)
    if analysis.tier_phase_totals:
        lines += _phase_lines("tier phases (sim):", analysis.tier_phase_totals)
    if any(analysis.tier_byte_flow.values()):
        lines.append("per-tier byte flow:")
        for key in TIER_BYTE_ATTRS:
            volume = analysis.tier_byte_flow.get(key, 0)
            if volume:
                lines.append(f"  {key:<28} {volume / 2**20:>12.1f} MiB")

    if analysis.critical_paths:
        lines.append("pipeline critical paths (wall):")
        for cp in analysis.critical_paths:
            chain = " -> ".join(
                f"{PIPELINE_STAGES[n.stage].split('.', 1)[1]}[{n.item}]"
                for n in cp.path
            )
            lines.append(
                f"  save span {cp.parent_id}: {cp.items} items, "
                f"critical {cp.critical_wall_s * 1e3:.3f}ms / "
                f"makespan {cp.makespan_wall_s * 1e3:.3f}ms, "
                f"overlap {cp.overlap_efficiency:.2f}x, "
                f"bottleneck {cp.bottleneck_stage}"
            )
            lines.append(f"    {chain}")

    if analysis.utilization:
        lines.append("thread utilization (wall):")
        for thread, stats in analysis.utilization.items():
            lines.append(
                f"  {thread:<24} busy {stats['busy_s'] * 1e3:>9.3f}ms "
                f"({stats['busy_fraction']:>6.1%} of window, "
                f"{int(stats['spans'])} spans)"
            )

    slot = analysis.idle_slots
    if slot is not None:
        lines.append("idle-slot placement (sim):")
        lines.append(
            f"  iteration {slot.iteration_time_s:.3f}s, "
            f"bottleneck idle {slot.idle_fraction:.1%}, "
            f"interval {slot.interval_iterations:g} iters"
        )
        lines.append(
            f"  per save: {slot.bytes_inter_node_per_save / 2**20:.1f} MiB "
            f"inter-node = {slot.comm_seconds_per_save:.4f}s NIC time/node"
        )
        lines.append(
            f"  in idle slots: {slot.in_idle_seconds:.4f}s "
            f"({slot.in_idle_fraction:.1%}, {slot.in_idle_bytes / 2**20:.1f} MiB); "
            f"overflow into training: {slot.overflow_seconds:.4f}s "
            f"({slot.collided_bytes / 2**20:.1f} MiB)"
        )
        lines.append(
            f"  naive (no idle-slot scheduling) collision: "
            f"{slot.naive_collision_seconds:.4f}s/save"
        )
        lines.append(
            "  fits in idle: " + ("yes" if slot.fits_in_idle else "NO")
        )

    for problem in analysis.crosscheck_problems:
        lines.append(f"CROSSCHECK PROBLEM: {problem}")
    return "\n".join(lines)

"""Span tracer: nested spans with wall-clock *and* simulated durations.

Spans carry two independent clocks:

* ``wall_s`` -- real elapsed time from ``time.perf_counter()``; measures
  what the reproduction itself costs to run.
* ``sim_s`` -- simulated seconds from the ``TimeModel`` accounting that
  the engines already compute; measures what the modelled hardware
  would spend.  Engines attach it via :meth:`Span.add_sim` once a
  phase's analytic time is known (often after the byte work, because
  the communication makespan is only available at the end of a save).

Nesting uses a per-thread span stack, so spans opened on the same
thread nest naturally.  Worker threads (the three ``PipelinedRunner``
stages, ``ThreadPoolEncoder``) inherit no stack, so call sites pass the
coordinating span explicitly via ``parent=``.

The disabled path is a shared :data:`NULL_TRACER` whose ``span()``
returns one preallocated no-op context manager: instrumenting a call
site costs a method call and a truthiness test, nothing else -- no
allocation, no lock, no clock read.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry


class Span:
    """A single traced region; also its own context manager."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "attrs",
        "start_s",
        "wall_s",
        "sim_s",
        "thread",
        "_tracer",
    )

    enabled = True

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: Optional[int],
        attrs: Dict[str, Any],
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.start_s = 0.0
        self.wall_s: Optional[float] = None
        self.sim_s: Optional[float] = None
        self.thread = threading.current_thread().name

    def __enter__(self) -> "Span":
        self.start_s = self._tracer._now()
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.wall_s = self._tracer._now() - self.start_s
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._pop(self)
        return None

    def add_sim(self, seconds: float) -> None:
        """Attach simulated-``TimeModel`` duration (accumulates).

        Legal after the span closed: analytic phase times are often only
        known once the whole save has been costed, and the record is not
        serialised until the trace is written.
        """
        self.sim_s = (self.sim_s or 0.0) + seconds

    def set(self, **attrs: Any) -> None:
        self.attrs.update(attrs)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": self.start_s,
            "wall_s": self.wall_s,
            "sim_s": self.sim_s,
            "thread": self.thread,
            "attrs": self.attrs,
        }


class _NullSpan:
    """Shared no-op span: the entire disabled-tracer fast path."""

    __slots__ = ()

    enabled = False
    sim_s = None
    wall_s = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def add_sim(self, seconds: float) -> None:
        pass

    def set(self, **attrs: Any) -> None:
        pass


NULL_SPAN = _NullSpan()


class NullTracer:
    """Default tracer: every operation is a no-op.

    ``enabled`` is False so call sites can skip even argument
    construction for expensive attributes::

        tr = get_tracer()
        if tr.enabled:
            tr.event("checkpoint", version=..., nbytes=...)
    """

    __slots__ = ("metrics",)

    enabled = False

    def __init__(self) -> None:
        self.metrics = None

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return NULL_SPAN

    def record_span(self, name: str, **kwargs: Any) -> _NullSpan:
        return NULL_SPAN

    def rel_time(self, perf_counter_s: float) -> float:
        return 0.0

    def event(self, name: str, **fields: Any) -> None:
        pass

    def current_span(self) -> None:
        return None


NULL_TRACER = NullTracer()


class Tracer:
    """Collecting tracer: thread-safe span + event recorder."""

    enabled = True

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.spans: List[Span] = []
        self.events: List[Dict[str, Any]] = []
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._epoch = time.perf_counter()

    # -- clock ----------------------------------------------------------

    def _now(self) -> float:
        return time.perf_counter() - self._epoch

    # -- per-thread span stack ------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        self._stack().append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # pragma: no cover - misnested exit
            stack.remove(span)
        with self._lock:
            self.spans.append(span)

    def current_span(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    # -- public API -----------------------------------------------------

    def span(
        self,
        name: str,
        parent: Optional[Span] = None,
        **attrs: Any,
    ) -> Span:
        """Create a span context manager.

        ``parent`` overrides the thread-local nesting -- pass the
        coordinating span when opening spans from worker threads.
        """
        if parent is None:
            parent = self.current_span()
        parent_id = parent.span_id if isinstance(parent, Span) else None
        with self._lock:
            span_id = next(self._ids)
        return Span(self, name, span_id, parent_id, attrs)

    def rel_time(self, perf_counter_s: float) -> float:
        """Map a raw ``time.perf_counter()`` reading onto this tracer's
        timeline.

        ``perf_counter`` is ``CLOCK_MONOTONIC`` system-wide on Linux, so
        readings taken in *other processes* (process-pool workers) live on
        the same clock as the parent and translate by subtracting the
        epoch — this is what lets worker spans reconcile exactly with the
        coordinating span that contains them.
        """
        return perf_counter_s - self._epoch

    def record_span(
        self,
        name: str,
        parent: Optional[Span] = None,
        start_s: float = 0.0,
        wall_s: float = 0.0,
        thread: Optional[str] = None,
        **attrs: Any,
    ) -> Span:
        """Record an already-completed span from externally measured times.

        The cross-process counterpart of ``span(parent=...)``: pool
        workers cannot open spans on this tracer (it lives in the parent),
        so they report ``perf_counter`` timestamps back and the parent
        records the span on their behalf.  ``start_s`` is tracer-relative
        (use :meth:`rel_time`).  The recorded interval is clamped into the
        parent's bounds so trace validation's containment invariant holds
        even under clock jitter at the boundaries.
        """
        parent_id = parent.span_id if isinstance(parent, Span) else None
        if isinstance(parent, Span) and parent.wall_s is not None:
            p_start, p_end = parent.start_s, parent.start_s + parent.wall_s
            start_s = min(max(start_s, p_start), p_end)
            wall_s = max(0.0, min(wall_s, p_end - start_s))
        with self._lock:
            span_id = next(self._ids)
        span = Span(self, name, span_id, parent_id, attrs)
        span.start_s = start_s
        span.wall_s = wall_s
        if thread is not None:
            span.thread = thread
        with self._lock:
            self.spans.append(span)
        return span

    def event(self, name: str, **fields: Any) -> None:
        record = {
            "type": "event",
            "name": name,
            "t": self._now(),
            "thread": threading.current_thread().name,
            "fields": fields,
        }
        with self._lock:
            self.events.append(record)

    # -- export ---------------------------------------------------------

    def records(self) -> List[Dict[str, Any]]:
        """All spans + events as dicts, ordered by start time."""
        with self._lock:
            rows = [s.to_dict() for s in self.spans]
            rows.extend(dict(e) for e in self.events)
        rows.sort(key=lambda r: r.get("start", r.get("t", 0.0)))
        return rows

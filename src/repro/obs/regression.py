"""Bench history and performance-regression gating.

Every ``repro bench-encode`` run produces a ``BENCH_encode_throughput.json``
document; this module turns those one-off documents into a history and a
gate:

* :func:`history_entry` compresses a results document into one
  provenance-stamped JSONL record (git SHA, UTC timestamp, hostname,
  toolchain versions, per-shape fast-path throughputs).
* :func:`append_history` appends it to ``BENCH_history.jsonl``.
* :func:`check_regression` compares the newest entry against a rolling
  baseline (median of the previous ``window`` comparable runs) with a
  noise bound: the effective threshold is the larger of the configured
  threshold (15% by default) and twice the baseline window's observed
  relative spread, so a machine whose runs jitter by 10% does not
  page on a 10% "regression" — but a genuine 20% slowdown always does.

* :func:`check_ratchet` adds the floor the rolling baseline cannot give:
  the rolling median follows a slow drift downward, so five runs each 5%
  slower than the last would never page.  The ratchet compares against
  the *best* value ever recorded for the metric on this host — once a
  run proves X MiB/s is achievable, any later run below
  ``RATCHET_RATIO * X`` (0.9 by default) fails, and the win sticks.

Entries are only compared against prior runs with the same context
(payload size, quick flag, shape, repeats): a 4 MiB smoke run never
baselines a 64 MiB measurement.  The ratchet additionally keys on the
recorded hostname, because a best set on a 32-core bench host must not
gate a laptop.

``repro bench-history`` drives all of this and exits non-zero on any
regression or ratchet violation, which is what CI's perf gate runs.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import ReproError
from repro.obs.provenance import provenance_stamp

HISTORY_SCHEMA = 1

#: Metrics tracked per shape: the fast-path throughputs on the save and
#: recovery critical paths (``fast_decode`` included — recovery is gated
#: too), plus both pool backends.
TRACKED_PATHS = ("fast_encode", "pool_encode", "proc_encode", "fast_decode")

DEFAULT_THRESHOLD = 0.15
DEFAULT_WINDOW = 5
#: Noise bound multiplier: effective threshold >= this x baseline spread.
NOISE_FACTOR = 2.0
#: Ratchet floor: once a host records X MiB/s for a metric, later runs on
#: that host must stay above ``RATCHET_RATIO * X``.
RATCHET_RATIO = 0.9


def _context_key(doc: Dict[str, Any], shape: Dict[str, Any]) -> str:
    """Comparability key: only like-for-like runs baseline each other."""
    return (
        f"payload={doc.get('payload_mib')},quick={bool(doc.get('quick'))},"
        f"repeats={doc.get('repeats')},shape=({shape['k']},{shape['m']},{shape['w']})"
    )


def history_entry(doc: Dict[str, Any]) -> Dict[str, Any]:
    """One compact, provenance-stamped history record for a bench document.

    Raises:
        ReproError: if the document is not an encode-throughput result.
    """
    if doc.get("benchmark") != "encode_throughput" or "shapes" not in doc:
        raise ReproError(
            "not an encode-throughput results document "
            f"(benchmark={doc.get('benchmark')!r})"
        )
    shapes = []
    for shape in doc["shapes"]:
        shapes.append(
            {
                "context": _context_key(doc, shape),
                "k": shape["k"],
                "m": shape["m"],
                "w": shape["w"],
                "throughput_mib_s": {
                    path: shape["throughput_mib_s"][path]
                    for path in TRACKED_PATHS
                    if path in shape["throughput_mib_s"]
                },
            }
        )
    return {
        "schema": HISTORY_SCHEMA,
        "provenance": doc.get("provenance") or provenance_stamp(),
        "payload_mib": doc.get("payload_mib"),
        "quick": bool(doc.get("quick")),
        "repeats": doc.get("repeats"),
        "shapes": shapes,
    }


def append_history(doc: Dict[str, Any], path: str) -> Dict[str, Any]:
    """Append the document's history entry to ``path``; returns the entry."""
    entry = history_entry(doc)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def load_history(path: str) -> List[Dict[str, Any]]:
    """Parse a ``BENCH_history.jsonl`` file (oldest first)."""
    if not os.path.exists(path):
        return []
    entries: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ReproError(f"{path}:{lineno}: invalid JSON: {exc}")
    return entries


@dataclass
class MetricDelta:
    """One metric's newest value against its rolling baseline."""

    context: str
    path: str
    current: float
    baseline: float
    samples: int
    spread: float
    threshold: float

    @property
    def delta_fraction(self) -> float:
        """Relative change vs baseline; negative = slower."""
        if self.baseline <= 0:
            return 0.0
        return (self.current - self.baseline) / self.baseline

    @property
    def regressed(self) -> bool:
        return self.delta_fraction < -self.threshold


@dataclass
class RegressionResult:
    """Outcome of gating the newest history entry."""

    deltas: List[MetricDelta] = field(default_factory=list)
    fresh: List[str] = field(default_factory=list)  # metrics with no baseline

    @property
    def regressions(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def check_regression(
    history: List[Dict[str, Any]],
    threshold: float = DEFAULT_THRESHOLD,
    window: int = DEFAULT_WINDOW,
    noise_factor: float = NOISE_FACTOR,
) -> RegressionResult:
    """Gate the newest history entry against its rolling baseline.

    For each (context, path) metric of the newest entry, the baseline is
    the median of that metric over the previous ``window`` comparable
    entries.  The effective threshold is
    ``max(threshold, noise_factor * spread)`` where ``spread`` is the
    baseline window's max relative deviation from its median — runs
    noisier than the configured threshold raise the bar instead of
    producing false alarms.  Metrics never seen before are reported as
    ``fresh`` and pass.

    Raises:
        ReproError: for an empty history or a non-positive window.
    """
    if not history:
        raise ReproError("empty bench history; run `repro bench-encode` first")
    if window < 1:
        raise ReproError(f"window must be >= 1, got {window}")
    current, prior = history[-1], history[:-1]

    past: Dict[tuple, List[float]] = {}
    for entry in prior:
        for shape in entry.get("shapes", []):
            for path, value in shape.get("throughput_mib_s", {}).items():
                past.setdefault((shape["context"], path), []).append(float(value))

    result = RegressionResult()
    for shape in current.get("shapes", []):
        for path, value in shape.get("throughput_mib_s", {}).items():
            key = (shape["context"], path)
            series = past.get(key, [])[-window:]
            if not series:
                result.fresh.append(f"{shape['context']}/{path}")
                continue
            baseline = _median(series)
            spread = (
                max(abs(v - baseline) / baseline for v in series)
                if baseline > 0
                else 0.0
            )
            result.deltas.append(
                MetricDelta(
                    context=shape["context"],
                    path=path,
                    current=float(value),
                    baseline=baseline,
                    samples=len(series),
                    spread=spread,
                    threshold=max(threshold, noise_factor * spread),
                )
            )
    return result


@dataclass
class RatchetDelta:
    """One metric's newest value against its all-time host best."""

    context: str
    host: str
    path: str
    current: float
    best: float
    ratio: float

    @property
    def floor(self) -> float:
        return self.ratio * self.best

    @property
    def regressed(self) -> bool:
        return self.current < self.floor


@dataclass
class RatchetResult:
    """Outcome of the ratcheting-floor check."""

    deltas: List[RatchetDelta] = field(default_factory=list)
    fresh: List[str] = field(default_factory=list)  # no prior best on this host

    @property
    def violations(self) -> List[RatchetDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def ok(self) -> bool:
        return not self.violations


def _entry_host(entry: Dict[str, Any]) -> Optional[str]:
    host = (entry.get("provenance") or {}).get("hostname")
    return str(host) if host else None


def check_ratchet(
    history: List[Dict[str, Any]],
    ratio: float = RATCHET_RATIO,
) -> RatchetResult:
    """Gate the newest entry against the best value its host ever recorded.

    Keyed by ``(context, hostname, path)``: the floor ratchets upward as
    better numbers land, never downward, and never crosses machines.
    Entries without a recorded hostname are skipped (nothing sensible to
    compare against).  Metrics with no prior best pass as ``fresh`` —
    their value becomes the floor for the next run.

    Raises:
        ReproError: for an empty history or a ratio outside (0, 1].
    """
    if not history:
        raise ReproError("empty bench history; run `repro bench-encode` first")
    if not 0.0 < ratio <= 1.0:
        raise ReproError(f"ratchet ratio must be in (0, 1], got {ratio}")
    current, prior = history[-1], history[:-1]

    best: Dict[tuple, float] = {}
    for entry in prior:
        host = _entry_host(entry)
        if host is None:
            continue
        for shape in entry.get("shapes", []):
            for path, value in shape.get("throughput_mib_s", {}).items():
                key = (shape["context"], host, path)
                best[key] = max(best.get(key, 0.0), float(value))

    result = RatchetResult()
    host = _entry_host(current)
    if host is None:
        return result
    for shape in current.get("shapes", []):
        for path, value in shape.get("throughput_mib_s", {}).items():
            key = (shape["context"], host, path)
            if key not in best:
                result.fresh.append(f"{shape['context']}/{path}")
                continue
            result.deltas.append(
                RatchetDelta(
                    context=shape["context"],
                    host=host,
                    path=path,
                    current=float(value),
                    best=best[key],
                    ratio=ratio,
                )
            )
    return result


def render_ratchet(result: RatchetResult) -> str:
    """ASCII floor table for ``repro bench-history``."""
    lines = [
        f"{'context':<52} {'path':<12} {'MiB/s':>10} {'best':>10} "
        f"{'floor':>10} {'gate':>7}"
    ]
    for d in sorted(result.deltas, key=lambda d: (d.context, d.path)):
        verdict = "RATCHET" if d.regressed else "ok"
        lines.append(
            f"{d.context:<52} {d.path:<12} {d.current:>10.1f} "
            f"{d.best:>10.1f} {d.floor:>10.1f} {verdict:>7}"
        )
    for name in result.fresh:
        lines.append(f"{name}: first run on this host, floor recorded")
    if result.violations:
        lines.append(
            f"{len(result.violations)} ratchet violation(s): throughput fell "
            f"below {result.deltas[0].ratio:.0%} of this host's best"
        )
    elif result.deltas:
        lines.append("ratchet floors hold")
    return "\n".join(lines)


def render_result(result: RegressionResult) -> str:
    """ASCII delta table for ``repro bench-history``."""
    lines = [
        f"{'context':<52} {'path':<12} {'MiB/s':>10} {'baseline':>10} "
        f"{'delta':>8} {'gate':>7}"
    ]
    for d in sorted(result.deltas, key=lambda d: (d.context, d.path)):
        verdict = "REGRESS" if d.regressed else "ok"
        lines.append(
            f"{d.context:<52} {d.path:<12} {d.current:>10.1f} "
            f"{d.baseline:>10.1f} {d.delta_fraction:>+7.1%} {verdict:>7}"
        )
    for name in result.fresh:
        lines.append(f"{name}: first run, no baseline yet")
    if result.regressions:
        lines.append(
            f"{len(result.regressions)} regression(s) beyond the noise-bounded "
            "threshold"
        )
    elif result.deltas:
        lines.append("no regressions")
    return "\n".join(lines)

"""Metrics registry: counters, gauges and histograms for the hot path.

Design constraints, in order of importance:

1. **Zero cost when disabled.**  Hot-path call sites (``ec/kernels.py``,
   ``ec/threadpool.py``) guard on :func:`active`, which returns ``None``
   unless a registry has been installed.  The disabled path is a single
   module-attribute load and ``is None`` test -- no object allocation,
   no lock, no dict lookup.
2. **Thread safe when enabled.**  ``ThreadPoolEncoder`` workers and the
   three ``PipelinedRunner`` stage threads increment counters
   concurrently; every mutation takes the owning metric's lock.
3. **Plain-data snapshots.**  ``MetricsRegistry.snapshot()`` returns
   JSON-serialisable dicts so traces and chaos reports can embed them.
"""

from __future__ import annotations

import random
import threading
import zlib
from typing import Dict, Optional


class Counter:
    """Monotonically increasing value (int or float)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> float:
        return self._value


class Gauge:
    """Last-write-wins value; for cache sizes, hit rates, fractions."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> float:
        return self._value


class Histogram:
    """Streaming summary plus a bounded reservoir for percentiles.

    count / sum / min / max stream exactly; p50/p95/p99 come from an
    Algorithm-R reservoir of :data:`RESERVOIR_SIZE` samples, so memory
    stays bounded no matter how many encode calls a campaign makes.  The
    reservoir's rng is *private* and seeded from the histogram name —
    observation never touches any global random stream (the PR-3
    tracing-changes-nothing guarantee), and the same observe sequence
    yields the same percentiles on every run (snapshots are embedded in
    deterministic campaign reports).
    """

    #: Reservoir capacity; below it, percentiles are exact.
    RESERVOIR_SIZE = 512

    __slots__ = (
        "name", "count", "sum", "min", "max", "_lock", "_reservoir", "_rng"
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._lock = threading.Lock()
        self._reservoir: list[float] = []
        self._rng = random.Random(zlib.crc32(name.encode("utf-8")))

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.sum += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            if len(self._reservoir) < self.RESERVOIR_SIZE:
                self._reservoir.append(value)
            else:
                slot = self._rng.randrange(self.count)
                if slot < self.RESERVOIR_SIZE:
                    self._reservoir[slot] = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> Optional[float]:
        """Nearest-rank percentile from the reservoir (None if empty)."""
        if not self._reservoir:
            return None
        ordered = sorted(self._reservoir)
        rank = min(len(ordered) - 1, int(q / 100.0 * len(ordered)))
        return ordered[rank]

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            return {
                "count": self.count,
                "sum": self.sum,
                "min": self.min,
                "max": self.max,
                "mean": self.mean,
                "p50": self.percentile(50),
                "p95": self.percentile(95),
                "p99": self.percentile(99),
            }


class MetricsRegistry:
    """Named metric store; metrics are created on first use."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                metric = self._counters[name] = Counter(name)
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                metric = self._gauges[name] = Gauge(name)
            return metric

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                metric = self._histograms[name] = Histogram(name)
            return metric

    def snapshot(self) -> Dict[str, dict]:
        with self._lock:
            return {
                "counters": {n: m.snapshot() for n, m in self._counters.items()},
                "gauges": {n: m.snapshot() for n, m in self._gauges.items()},
                "histograms": {
                    n: m.snapshot() for n, m in self._histograms.items()
                },
            }


# ---------------------------------------------------------------------------
# Active-registry guard for hot paths.
#
# ``active()`` is the only thing kernel-level code should call: it is None
# unless tracing/metrics collection was explicitly installed, so the
# default cost at every instrumented call site is one attribute load.
# ---------------------------------------------------------------------------

_ACTIVE: Optional[MetricsRegistry] = None


def active() -> Optional[MetricsRegistry]:
    """The installed registry, or ``None`` when metrics are disabled."""
    return _ACTIVE


def _set_active(registry: Optional[MetricsRegistry]) -> None:
    global _ACTIVE
    _ACTIVE = registry

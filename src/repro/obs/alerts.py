"""Online SLO alerting over sampled fleet telemetry.

Rules are declarative :class:`AlertRule` records evaluated at every
sample point (grid ticks *and* eager transition samples).  The grammar:

``signal``
    a column name in the fleet series (``scope="fleet"``) or in each
    tenant's series (``scope="tenant"``).
``reduce``
    how the window of samples collapses to one value:

    * ``last`` — the newest sample (``window_s`` ignored);
    * ``max`` / ``min`` / ``mean`` — over samples in ``[t - W, t]``;
    * ``burn_rate`` — the piecewise-constant integral of the signal over
      ``[t - W, t]`` divided by ``W``.  For a 0/1 signal like
      ``degraded`` this is exactly "fraction of the window spent
      degraded", i.e. a degraded-seconds burn rate.
``op`` / ``threshold``
    the comparison: ``>``, ``>=``, ``<``, ``<=``.
``severity``
    ``warning`` or ``violation`` — campaigns and CI can gate on the
    latter (``repro fleet --fail-on-alerts``).

Firing is edge-triggered with hysteresis: a (rule, scope-instance) pair
alerts once when its condition first becomes true and re-arms only after
the condition observes false.  Each alert record carries the triggering
samples, a flight-recorder dump of the last N samples of the relevant
series, and the most recent correlated event (domain failure, tenant
failure, spare grant) that preceded the firing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import SimulationError

_OPS = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
}
_REDUCES = ("last", "max", "min", "mean", "burn_rate")
_SEVERITIES = ("warning", "violation")
_SCOPES = ("fleet", "tenant")


def _round9(value: float) -> float:
    out = round(float(value), 9)
    return 0.0 if out == 0 else out


@dataclass(frozen=True)
class AlertRule:
    """One declarative SLO condition (see module docstring for grammar)."""

    name: str
    signal: str
    threshold: float
    op: str = ">"
    scope: str = "fleet"
    reduce: str = "last"
    window_s: float = 0.0
    severity: str = "warning"
    description: str = ""

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise SimulationError(f"unknown op {self.op!r} in rule {self.name!r}")
        if self.reduce not in _REDUCES:
            raise SimulationError(
                f"unknown reduce {self.reduce!r} in rule {self.name!r}"
            )
        if self.severity not in _SEVERITIES:
            raise SimulationError(
                f"unknown severity {self.severity!r} in rule {self.name!r}"
            )
        if self.scope not in _SCOPES:
            raise SimulationError(
                f"unknown scope {self.scope!r} in rule {self.name!r}"
            )
        if self.reduce in ("max", "min", "mean", "burn_rate") and self.window_s <= 0:
            raise SimulationError(
                f"reduce {self.reduce!r} needs window_s > 0 in rule {self.name!r}"
            )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "signal": self.signal,
            "scope": self.scope,
            "reduce": self.reduce,
            "op": self.op,
            "threshold": _round9(self.threshold),
            "window_s": _round9(self.window_s),
            "severity": self.severity,
            **({"description": self.description} if self.description else {}),
        }


def _windowed(buffer, signal: str, t: float, window_s: float):
    """(times, values) inside ``[t - W, t]`` plus the sample just before
    the window edge (its value rules the partial leading segment)."""
    lo = buffer.window(t - window_s)
    times = buffer.times[lo:]
    values = buffer.column(signal)[lo:]
    prev_value = buffer.column(signal)[lo - 1] if lo > 0 else None
    return times, values, prev_value


def _reduce_window(rule: AlertRule, buffer, t: float) -> Optional[float]:
    """Collapse the rule's window of samples to a single value."""
    if signal_missing(buffer, rule.signal):
        return None
    if rule.reduce == "last":
        return buffer.last(rule.signal)
    times, values, prev_value = _windowed(buffer, rule.signal, t, rule.window_s)
    if not times:
        return None
    if rule.reduce == "max":
        return max(values)
    if rule.reduce == "min":
        return min(values)
    if rule.reduce == "mean":
        return sum(values) / len(values)
    # burn_rate: piecewise-constant integral over [t - W, t] / W.
    t_lo = t - rule.window_s
    integral = 0.0
    # Leading partial segment: the value in force *before* the first
    # retained in-window sample.
    lead = prev_value if prev_value is not None else values[0]
    integral += lead * max(0.0, times[0] - t_lo)
    for i in range(len(times) - 1):
        integral += values[i] * (times[i + 1] - times[i])
    integral += values[-1] * max(0.0, t - times[-1])
    return integral / rule.window_s


def signal_missing(buffer, signal: str) -> bool:
    return buffer is None or signal not in buffer.columns or not len(buffer)


class AlertEngine:
    """Evaluates rules at sample points; owns fired-alert records.

    Args:
        rules: the rule set (append more before the run starts).
        recorder_depth: flight-recorder length N — the last N samples of
            the implicated series are embedded in each alert record.
        max_alerts: hard cap on stored alert records (drops counted).
    """

    def __init__(
        self,
        rules=(),
        recorder_depth: int = 32,
        max_alerts: int = 256,
    ) -> None:
        self.rules: List[AlertRule] = list(rules)
        self.recorder_depth = recorder_depth
        self.max_alerts = max_alerts
        self.alerts: List[dict] = []
        self.dropped = 0
        self.evaluations = 0
        self._firing: set = set()

    # -- evaluation ----------------------------------------------------
    def evaluate(self, sampler, t: float, reason: str) -> None:
        """Check every rule against the sampler's buffers at time ``t``."""
        self.evaluations += 1
        for rule in self.rules:
            if rule.scope == "fleet":
                self._check(rule, sampler, sampler.fleet, None, t, reason)
            else:
                for name, series in sampler.tenants.items():
                    if series.closed_at is None:
                        self._check(
                            rule, sampler, series.buffer, name, t, reason
                        )

    def _check(self, rule, sampler, buffer, tenant, t, reason) -> None:
        value = _reduce_window(rule, buffer, t)
        key = (rule.name, tenant)
        if value is None:
            return
        if not _OPS[rule.op](value, rule.threshold):
            self._firing.discard(key)
            return
        if key in self._firing:
            return  # hysteresis: one alert per continuous breach
        self._firing.add(key)
        self._fire(rule, sampler, buffer, tenant, t, reason, value)

    def _fire(self, rule, sampler, buffer, tenant, t, reason, value) -> None:
        if len(self.alerts) >= self.max_alerts:
            self.dropped += 1
            return
        record = {
            "t": _round9(t),
            "rule": rule.name,
            "severity": rule.severity,
            "scope": rule.scope,
            **({"tenant": tenant} if tenant else {}),
            "signal": rule.signal,
            "value": _round9(value),
            "threshold": _round9(rule.threshold),
            "sample_reason": reason,
            "triggering_samples": self._tail(buffer, rule.signal, 4),
            "flight_recorder": self._flight_recorder(buffer),
        }
        correlated = self._correlated_event(sampler, t)
        if correlated is not None:
            record["correlated_event"] = correlated
        self.alerts.append(record)

    # -- context capture -----------------------------------------------
    def _tail(self, buffer, signal: str, n: int) -> List[dict]:
        times = buffer.times[-n:]
        values = buffer.column(signal)[-n:]
        return [
            {"t": _round9(ts), "value": _round9(v)}
            for ts, v in zip(times, values)
        ]

    def _flight_recorder(self, buffer) -> dict:
        """The last N samples of every column in the implicated series."""
        n = self.recorder_depth
        return {
            "t": [_round9(ts) for ts in buffer.times[-n:]],
            "series": {
                name: [_round9(v) for v in buffer.column(name)[-n:]]
                for name in buffer.columns
            },
        }

    def _correlated_event(self, sampler, t: float) -> Optional[dict]:
        """The most recent sampler event at or before the firing time."""
        best = None
        for event in sampler.events:
            if event["t"] <= t + 1e-12:
                best = event
            else:
                break
        return best

    # -- export --------------------------------------------------------
    def violation_count(self) -> int:
        return sum(1 for a in self.alerts if a["severity"] == "violation")

    def to_dict(self) -> dict:
        payload: Dict[str, object] = {
            "rules": [rule.to_dict() for rule in self.rules],
            "evaluations": self.evaluations,
            "fired": self.alerts,
            "counts": {
                "total": len(self.alerts),
                "violation": self.violation_count(),
                "warning": sum(
                    1 for a in self.alerts if a["severity"] == "warning"
                ),
            },
        }
        if self.dropped:
            payload["dropped"] = self.dropped
        return payload


def default_fleet_rules(duration_hours: float = 8.0) -> List[AlertRule]:
    """The stock rule set ``repro fleet --timeline`` evaluates.

    Thresholds are calibrated so a healthy smoke run stays quiet:
    warnings surface pressure (spare waits, admission backlog, degraded
    burn) and the single ``violation`` rule fires only when a tenant
    sits below full redundancy for over an hour — the
    ``time_to_full_redundancy > D`` SLO from the issue.
    """
    window = max(1800.0, duration_hours * 3600.0 / 8.0)
    return [
        AlertRule(
            name="degraded-burn-rate",
            signal="degraded",
            scope="tenant",
            reduce="burn_rate",
            window_s=window,
            op=">",
            threshold=0.5,
            severity="warning",
            description=(
                "tenant spent >50% of the trailing window below full "
                "redundancy (degraded_seconds burn rate)"
            ),
        ),
        AlertRule(
            name="slow-repair",
            signal="degraded_age_s",
            scope="tenant",
            reduce="last",
            op=">",
            threshold=3600.0,
            severity="violation",
            description=(
                "open degraded window older than 1h: repair/spare path "
                "is not keeping up (time_to_full_redundancy SLO)"
            ),
        ),
        AlertRule(
            name="spare-starvation",
            signal="spare_wait_s",
            scope="fleet",
            reduce="last",
            op=">",
            threshold=1800.0,
            severity="warning",
            description="oldest queued spare request waited >30min",
        ),
        AlertRule(
            name="admission-backlog",
            signal="admission_queue",
            scope="fleet",
            reduce="mean",
            window_s=window,
            op=">",
            threshold=16.0,
            severity="warning",
            description="admission queue averaged >16 jobs over the window",
        ),
    ]

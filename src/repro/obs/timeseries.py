"""Sim-time telemetry: columnar ring buffers sampled off the event loop.

The fleet campaigns report end-of-run aggregates; this module adds the
*time* dimension.  A :class:`TimeSeriesSampler` hangs off the simulator's
``on_advance`` hook (see :mod:`repro.sim.events`) and samples registered
probes at a fixed sim-time grid, plus **eagerly** whenever a manager's
degraded window opens or closes (so no window edge is ever quantised to
the grid).  Campaigns without an event loop drive the same sampler with
:meth:`TimeSeriesSampler.advance` against their own manual clock.

Design constraints, mirroring :mod:`repro.obs.metrics`:

1. **Zero perturbation.**  Sampling must not change *anything* a report
   serialises: it never schedules simulator events (``processed`` and
   ``now`` stay untouched), never draws from any rng, and only *reads*
   probe state.  A samples-on vs samples-off run is byte-identical in
   every field except the new ``timeline`` section.
2. **Zero cost when disabled.**  Hot call sites (``CheckpointManager``
   transition marks) guard on :func:`active`, a single module-attribute
   load returning ``None`` unless a sampler was installed.
3. **Bounded memory.**  Series live in capacity-bounded columnar ring
   buffers; integrals are accumulated online at observe time, so dropping
   old samples never loses accounting.

The per-tenant degraded integral is exact, not approximate: state is
piecewise-constant between events, transitions are sampled eagerly at
their exact sim time, so the trapezoid/step integral over the sample
points reconstructs the ledger's ``degraded_seconds`` at 1e-9 (pinned by
``crosscheck_timeline`` and the analyzer).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, List, Optional

from repro.errors import SimulationError

Probe = Callable[[float], float]

#: Relative tolerance for timeline-vs-ledger reconciliation — the same
#: discipline as the PR-3 span/report crosscheck.
RECONCILE_REL_TOL = 1e-9


def _r(value: float) -> float:
    """Round for serialisation; normalise -0.0 so reruns byte-match."""
    out = round(float(value), 9)
    return 0.0 if out == 0 else out


class SeriesBuffer:
    """Columnar ring buffer: one time column plus named value columns.

    Appending past ``capacity`` drops the oldest row (``dropped`` counts
    them); integrals are accumulated online by the owner, so rotation
    never loses accounting, only plot resolution at the far left.
    """

    __slots__ = ("capacity", "columns", "times", "dropped", "_cols")

    def __init__(self, columns: tuple, capacity: int = 4096) -> None:
        if capacity < 2:
            raise SimulationError(f"capacity must be >= 2, got {capacity}")
        self.capacity = capacity
        self.columns = tuple(columns)
        self.times: List[float] = []
        self._cols: Dict[str, List[float]] = {c: [] for c in self.columns}
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.times)

    def append(self, t: float, row: Dict[str, float]) -> None:
        self.times.append(t)
        for name in self.columns:
            self._cols[name].append(row.get(name, 0.0))
        if len(self.times) > self.capacity:
            del self.times[0]
            for col in self._cols.values():
                del col[0]
            self.dropped += 1

    def column(self, name: str) -> List[float]:
        return self._cols[name]

    def last(self, name: str) -> Optional[float]:
        col = self._cols[name]
        return col[-1] if col else None

    def window(self, t_lo: float) -> int:
        """Index of the first retained sample with ``t >= t_lo``."""
        times = self.times
        lo, hi = 0, len(times)
        while lo < hi:
            mid = (lo + hi) // 2
            if times[mid] < t_lo:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def to_dict(self) -> dict:
        payload = {
            "t": [_r(t) for t in self.times],
            "series": {
                name: [_r(v) for v in col] for name, col in self._cols.items()
            },
        }
        if self.dropped:
            payload["dropped"] = self.dropped
        return payload


class TenantSeries:
    """One tenant's sampled signals plus online degraded-time integration.

    ``observe`` accumulates ``state * dt`` segments between consecutive
    sample points; because the manager emits an eager sample at every
    window transition, the integral is exact.  ``closed_integral``
    excludes the currently-open tail so it compares against the ledger,
    which only books *closed* windows.
    """

    __slots__ = (
        "name",
        "buffer",
        "probes",
        "transitions",
        "_last_t",
        "_last_degraded",
        "_integral",
        "_open_since",
        "closed_at",
    )

    def __init__(
        self, name: str, probes: Dict[str, Probe], capacity: int = 1024
    ) -> None:
        self.name = name
        self.probes = dict(probes)
        self.buffer = SeriesBuffer(tuple(self.probes), capacity=capacity)
        self.transitions: List[dict] = []
        self._last_t: Optional[float] = None
        self._last_degraded = 0.0
        self._integral = 0.0
        self._open_since: Optional[float] = None
        self.closed_at: Optional[float] = None

    def observe(self, t: float) -> Dict[str, float]:
        row = {name: float(fn(t)) for name, fn in self.probes.items()}
        degraded = 1.0 if row.get("degraded", 0.0) else 0.0
        if self._last_t is not None and t > self._last_t:
            self._integral += self._last_degraded * (t - self._last_t)
        self._last_t = t if self._last_t is None else max(self._last_t, t)
        if degraded and self._open_since is None:
            self._open_since = t
        elif not degraded:
            self._open_since = None
        self._last_degraded = degraded
        self.buffer.append(t, row)
        return row

    @property
    def open_tail_s(self) -> float:
        """Degraded seconds accrued by the still-open window, if any."""
        if self._open_since is None or self._last_t is None:
            return 0.0
        return self._last_t - self._open_since

    @property
    def closed_integral_s(self) -> float:
        """Integrated degraded time over *closed* windows only."""
        return self._integral - self.open_tail_s

    def close(self, t: float) -> None:
        """Final sample; the series stops integrating here."""
        if self.closed_at is None:
            self.observe(t)
            self.closed_at = t

    def to_dict(self) -> dict:
        payload = self.buffer.to_dict()
        payload["degraded_integral_closed_s"] = _r(self.closed_integral_s)
        payload["degraded_open_tail_s"] = _r(self.open_tail_s)
        if self.transitions:
            payload["transitions"] = self.transitions
        return payload


class TimeSeriesSampler:
    """Samples fleet-wide and per-tenant probes on a sim-time grid.

    Attach to a shared :class:`~repro.sim.events.Simulator` with
    :meth:`attach` (uses the ``on_advance`` observer — adds no events),
    or drive a manual clock with :meth:`advance`.  Probes are callables
    ``fn(t) -> float`` that read — never mutate — live state.
    """

    def __init__(
        self,
        period_s: float = 60.0,
        capacity: int = 4096,
        tenant_capacity: int = 1024,
        alert_engine=None,
    ) -> None:
        if period_s <= 0:
            raise SimulationError(f"period_s must be positive, got {period_s}")
        self.period_s = float(period_s)
        self.capacity = capacity
        self.tenant_capacity = tenant_capacity
        self.alerts = alert_engine
        self._fleet_probes: Dict[str, Probe] = {}
        self.fleet: Optional[SeriesBuffer] = None
        self.tenants: Dict[str, TenantSeries] = {}
        self._by_manager: Dict[int, TenantSeries] = {}
        self.events: List[dict] = []
        self.events_dropped = 0
        self.samples = 0
        self._next_tick: Optional[float] = None
        self._last_t = 0.0
        self._sim = None

    # -- wiring --------------------------------------------------------
    def register_probe(self, name: str, fn: Probe) -> None:
        """Add a fleet-wide signal (before the first sample lands)."""
        if self.fleet is not None:
            raise SimulationError(
                f"cannot add probe {name!r} after sampling started"
            )
        self._fleet_probes[name] = fn

    def watch_tenant(
        self, name: str, manager, probes: Dict[str, Probe], t: float | None = None
    ) -> TenantSeries:
        """Track a tenant's signals; ``manager`` keys eager transitions."""
        if name in self.tenants:
            raise SimulationError(f"tenant {name!r} already watched")
        series = TenantSeries(name, probes, capacity=self.tenant_capacity)
        self.tenants[name] = series
        if manager is not None:
            self._by_manager[id(manager)] = series
        series.observe(self._last_t if t is None else t)
        return series

    def unwatch(self, name: str, t: float) -> None:
        """Freeze a tenant's series at ``t`` (call *before* release())."""
        series = self.tenants.get(name)
        if series is None:
            return
        series.close(t)
        for key, value in list(self._by_manager.items()):
            if value is series:
                del self._by_manager[key]

    def attach(self, sim) -> None:
        """Observe a simulator's clock; lands a baseline sample at now."""
        if sim.on_advance is not None:
            raise SimulationError("simulator already has an advance observer")
        self._sim = sim
        sim.on_advance = self._on_advance
        self._last_t = sim.now
        self._next_tick = sim.now + self.period_s
        self.sample(sim.now, "baseline")

    def detach(self) -> None:
        if self._sim is not None:
            self._sim.on_advance = None
            self._sim = None

    # -- clock ---------------------------------------------------------
    def _on_advance(self, old_now: float, new_now: float) -> None:
        self._backfill(new_now)

    def advance(self, t: float) -> None:
        """Manual-clock campaigns: the clock moved to ``t``."""
        if self._next_tick is None:
            self._next_tick = self._last_t + self.period_s
        self._backfill(t)

    def _backfill(self, new_now: float) -> None:
        """Sample every grid point crossed by this clock advance.

        State is piecewise-constant between events, so sampling a past
        grid point *now* reads exactly the value it had then — backfill
        is exact, not an approximation.
        """
        while self._next_tick is not None and self._next_tick <= new_now:
            self.sample(self._next_tick, "tick")
            self._next_tick += self.period_s

    # -- sampling ------------------------------------------------------
    def sample(self, t: float, reason: str = "tick") -> None:
        """Land one sample row at sim time ``t`` across all series."""
        if t < self._last_t:
            t = self._last_t  # defensive: never integrate backwards
        if self.fleet is None:
            self.fleet = SeriesBuffer(
                tuple(self._fleet_probes), capacity=self.capacity
            )
        row = {name: float(fn(t)) for name, fn in self._fleet_probes.items()}
        self.fleet.append(t, row)
        for series in self.tenants.values():
            if series.closed_at is None:
                series.observe(t)
        self._last_t = t
        self.samples += 1
        if self.alerts is not None:
            self.alerts.evaluate(self, t, reason)

    def record_transition(
        self, manager, t: float, degraded: bool, cause: str = ""
    ) -> None:
        """Eager sample at a degraded-window edge (called by the manager)."""
        series = self._by_manager.get(id(manager))
        if series is None:
            return
        series.transitions.append(
            {
                "t": _r(t),
                "kind": "degraded" if degraded else "fully_redundant",
                **({"cause": cause} if cause else {}),
            }
        )
        self.sample(t, "transition")

    def note_event(self, t: float, kind: str, **fields) -> None:
        """Record a correlated event (domain failure, spare grant, ...)."""
        if len(self.events) >= self.capacity:
            self.events_dropped += 1
            return
        self.events.append({"t": _r(t), "kind": kind, **fields})

    def finalize(self, t: float) -> None:
        """Land the final sample and freeze every tenant series."""
        self.sample(t, "final")
        for series in self.tenants.values():
            series.close(t)
        self.detach()

    # -- export --------------------------------------------------------
    def timeline_dict(self) -> dict:
        payload: dict = {
            "period_s": _r(self.period_s),
            "samples": self.samples,
            "fleet": self.fleet.to_dict() if self.fleet is not None else {},
            "tenants": {
                name: series.to_dict()
                for name, series in sorted(self.tenants.items())
            },
        }
        if self.events:
            payload["events"] = self.events
        if self.events_dropped:
            payload["events_dropped"] = self.events_dropped
        if self.alerts is not None:
            payload["alerts"] = self.alerts.to_dict()
        return payload


def crosscheck_timeline(
    timeline: dict, tenants: list, rel_tol: float = RECONCILE_REL_TOL
) -> List[str]:
    """Reconcile timeline-integrated degraded time against the ledger.

    ``tenants`` is the report's per-tenant SLO list (each entry carries
    ``name`` and ``degraded_seconds``).  The timeline integral over
    *closed* windows must match the ledger value at ``rel_tol`` for every
    tenant present in both; returns human-readable problem strings.
    """
    problems: List[str] = []
    series = timeline.get("tenants", {})
    for record in tenants:
        name = record.get("name")
        if name not in series:
            continue
        ledger = float(record.get("degraded_seconds", 0.0))
        integrated = float(series[name].get("degraded_integral_closed_s", 0.0))
        tol = max(abs(ledger), abs(integrated)) * rel_tol + 1e-9
        if abs(ledger - integrated) > tol:
            problems.append(
                f"tenant {name}: timeline integral {integrated!r} != "
                f"ledger degraded_seconds {ledger!r} (tol {tol:g})"
            )
    return problems


# ---------------------------------------------------------------------------
# Active-sampler guard, mirroring ``obs.metrics.active()``: manager-level
# transition marks pay one attribute load when telemetry is off.
# ---------------------------------------------------------------------------

_ACTIVE: Optional[TimeSeriesSampler] = None


def active() -> Optional[TimeSeriesSampler]:
    """The installed sampler, or ``None`` when telemetry is disabled."""
    return _ACTIVE


def _set_active(sampler: Optional[TimeSeriesSampler]) -> None:
    global _ACTIVE
    _ACTIVE = sampler


@contextmanager
def use_sampler(sampler: TimeSeriesSampler):
    """Install ``sampler`` as the active sampler for a ``with`` block."""
    previous = _ACTIVE
    _set_active(sampler)
    try:
        yield sampler
    finally:
        _set_active(previous)

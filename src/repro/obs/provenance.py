"""Provenance stamping for result artifacts.

Every JSON artifact the repo emits (``BENCH_encode_throughput.json``,
``CHAOS_report.json``, bench-history entries, exported traces) carries the
same stamp so that a number can always be traced back to the commit,
machine and toolchain that produced it.  The stamp is best-effort: outside
a git checkout the SHA degrades to ``"unknown"`` rather than failing the
run that produced the result.
"""

from __future__ import annotations

import platform
import subprocess
from datetime import datetime, timezone
from typing import Any, Dict, Optional


def git_sha(cwd: Optional[str] = None) -> str:
    """The current commit SHA, or ``"unknown"`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def git_dirty(cwd: Optional[str] = None) -> bool:
    """True when the working tree has uncommitted changes (best effort)."""
    try:
        out = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return False
    return out.returncode == 0 and bool(out.stdout.strip())


def provenance_stamp(cwd: Optional[str] = None) -> Dict[str, Any]:
    """Attributable run context: commit, time, host, toolchain versions."""
    import numpy as np

    return {
        "git_sha": git_sha(cwd),
        "git_dirty": git_dirty(cwd),
        "timestamp_utc": datetime.now(timezone.utc).isoformat(),
        "hostname": platform.node() or "unknown",
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }

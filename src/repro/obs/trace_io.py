"""Trace serialisation: JSONL writer, loader, validator, summaries.

Trace schema (one JSON object per line):

* ``{"type": "meta", "schema": 1, ...}`` -- first line; free-form
  run description supplied by the writer.
* ``{"type": "span", "id", "parent", "name", "start", "wall_s",
  "sim_s", "thread", "attrs"}`` -- one closed span.  ``start`` and
  ``wall_s`` are wall-clock seconds relative to the tracer epoch;
  ``sim_s`` is the simulated ``TimeModel`` duration (null when the
  span does not map to an analytic phase, e.g. it was interrupted by
  an injected crash before the phase was costed).
* ``{"type": "event", "name", "t", "thread", "fields"}`` -- a point
  event (checkpoint committed, crash point fired, recovery, ...).
* ``{"type": "metrics", "snapshot": {...}}`` -- last line; the
  metrics-registry snapshot at write time.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

from repro.errors import ReproError
from repro.obs.tracer import Tracer

SCHEMA_VERSION = 1

#: Tolerance for wall-clock containment checks.  Parent/child spans read
#: the clock at slightly different instants; anything below a tenth of a
#: millisecond is clock-read jitter, not a nesting bug.
_WALL_SLACK_S = 1e-4


def write_jsonl(tracer: Tracer, path: str, **meta: Any) -> int:
    """Write the trace to ``path``; returns the number of lines."""
    rows: List[Dict[str, Any]] = [
        {"type": "meta", "schema": SCHEMA_VERSION, **meta}
    ]
    rows.extend(tracer.records())
    rows.append({"type": "metrics", "snapshot": tracer.metrics.snapshot()})
    with open(path, "w", encoding="utf-8") as fh:
        for row in rows:
            fh.write(json.dumps(row, sort_keys=True) + "\n")
    return len(rows)


@dataclass
class Trace:
    """Parsed trace file."""

    meta: Dict[str, Any] = field(default_factory=dict)
    spans: List[Dict[str, Any]] = field(default_factory=list)
    events: List[Dict[str, Any]] = field(default_factory=list)
    metrics: Dict[str, Any] = field(default_factory=dict)

    def events_named(self, name: str) -> List[Dict[str, Any]]:
        return [e for e in self.events if e["name"] == name]

    def spans_named(self, name: str) -> List[Dict[str, Any]]:
        return [s for s in self.spans if s["name"] == name]


def load_trace(path: str) -> Trace:
    """Parse a JSONL trace written by :func:`write_jsonl`."""
    trace = Trace()
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ReproError(f"{path}:{lineno}: invalid JSON: {exc}")
            kind = row.get("type")
            if kind == "meta":
                trace.meta = row
            elif kind == "span":
                trace.spans.append(row)
            elif kind == "event":
                trace.events.append(row)
            elif kind == "metrics":
                trace.metrics = row.get("snapshot", {})
            else:
                raise ReproError(f"{path}:{lineno}: unknown record type {kind!r}")
    return trace


def validate_spans(spans: Iterable[Dict[str, Any]]) -> List[str]:
    """Structural checks on a span set; returns a list of problems.

    Checks: unique ids, parents exist, durations are non-negative, and
    every child's wall interval lies inside its parent's (modulo clock
    jitter).  The containment check holds across threads too, because
    pipeline-stage spans only close while their coordinating save span
    is still open.
    """
    problems: List[str] = []
    by_id: Dict[int, Dict[str, Any]] = {}
    for span in spans:
        sid = span["id"]
        if sid in by_id:
            problems.append(f"duplicate span id {sid}")
        by_id[sid] = span
    for span in by_id.values():
        name, sid = span["name"], span["id"]
        if span["wall_s"] is None or span["wall_s"] < 0:
            problems.append(f"span {sid} ({name}): bad wall_s {span['wall_s']!r}")
            continue
        parent_id = span.get("parent")
        if parent_id is None:
            continue
        parent = by_id.get(parent_id)
        if parent is None:
            problems.append(f"span {sid} ({name}): unknown parent {parent_id}")
            continue
        if span["start"] < parent["start"] - _WALL_SLACK_S:
            problems.append(
                f"span {sid} ({name}) starts before parent {parent_id}"
            )
        child_end = span["start"] + span["wall_s"]
        parent_end = parent["start"] + (parent["wall_s"] or 0.0)
        if child_end > parent_end + _WALL_SLACK_S:
            problems.append(
                f"span {sid} ({name}) ends after parent {parent_id}"
            )
    return problems


def phase_totals(
    spans: Iterable[Dict[str, Any]],
    kind: Optional[str] = None,
) -> Dict[str, float]:
    """Sum ``sim_s`` per ``attrs["phase"]`` over phase-tagged spans.

    Spans without a phase tag or without a simulated duration (e.g. a
    save torn by an injected crash before it was costed) contribute
    nothing, which is exactly what reconciling against completed
    ``SaveReport``/``RecoveryReport`` objects requires.
    """
    totals: Dict[str, float] = {}
    for span in spans:
        attrs = span.get("attrs") or {}
        phase = attrs.get("phase")
        if phase is None or span.get("sim_s") is None:
            continue
        if kind is not None and attrs.get("kind") != kind:
            continue
        totals[phase] = totals.get(phase, 0.0) + span["sim_s"]
    return totals


def crosscheck_totals(
    trace_totals: Dict[str, float],
    report_breakdowns: Iterable[Dict[str, float]],
    rel_tol: float = 1e-9,
) -> List[str]:
    """Reconcile traced phase sums against report breakdowns.

    For every phase the trace recorded, the traced total must equal the
    sum of that key over the report breakdowns to within ``rel_tol``
    relative tolerance.  Returns a list of mismatch descriptions.
    """
    expected: Dict[str, float] = {}
    for breakdown in report_breakdowns:
        for key, value in breakdown.items():
            expected[key] = expected.get(key, 0.0) + float(value)
    problems: List[str] = []
    for phase, traced in sorted(trace_totals.items()):
        want = expected.get(phase)
        if want is None:
            problems.append(f"phase {phase!r} traced but absent from reports")
            continue
        scale = max(abs(traced), abs(want), 1e-300)
        if abs(traced - want) / scale > rel_tol:
            problems.append(
                f"phase {phase!r}: traced {traced!r} != reported {want!r}"
            )
    return problems


def summarize(tracer: Tracer) -> Dict[str, Any]:
    """Compact digest of a live tracer, for embedding in chaos reports."""
    rows = tracer.records()
    spans = [r for r in rows if r["type"] == "span"]
    events = [r for r in rows if r["type"] == "event"]
    event_counts: Dict[str, int] = {}
    for event in events:
        event_counts[event["name"]] = event_counts.get(event["name"], 0) + 1
    span_counts: Dict[str, int] = {}
    for span in spans:
        span_counts[span["name"]] = span_counts.get(span["name"], 0) + 1
    snapshot = tracer.metrics.snapshot()
    return {
        "spans": len(spans),
        "events": len(events),
        "span_counts": span_counts,
        "event_counts": event_counts,
        "phase_sim_totals": phase_totals(spans),
        "nesting_problems": validate_spans(spans),
        "counters": snapshot["counters"],
    }

"""Traced-job driver behind the ``repro trace`` CLI.

Runs a checkpoint job on the standard testbed shape (4 nodes x 2 GPUs,
TP=2 / PP=4 — the same cluster the chaos campaigns use) with a collecting
:class:`~repro.obs.tracer.Tracer` installed, writes the JSONL trace, and
prints a per-phase overhead breakdown.  The breakdown is *cross-checked*:
every phase total derived from the trace's spans must reconcile with the
sum of the engine's own :class:`SaveReport`/:class:`RecoveryReport`
breakdowns within a relative tolerance, so the trace is evidence, not a
second opinion.
"""

from __future__ import annotations

import os
import sys

from repro import obs
from repro.errors import ReproError
from repro.obs import trace_io
from repro.analysis.breakdown import normalise_breakdown, sum_breakdowns
from repro.checkpoint.job import TrainingJob
from repro.checkpoint.manager import CheckpointManager
from repro.checkpoint.tiering import TierPolicy
from repro.core.eccheck import ECCheckConfig
from repro.core.registry import build_engine, engine_names
from repro.errors import CheckpointError
from repro.parallel.strategy import ParallelismSpec
from repro.parallel.topology import ClusterSpec

ENGINES = ("eccheck", "base1", "base2", "base3", "gradrep", "hybrid")


def build_traced_job(
    engine_name: str, model: str, scale: float, seed: int
) -> tuple[TrainingJob, object]:
    """Testbed job + engine, mirroring the chaos campaign's shape."""
    job = TrainingJob.create(
        model=model,
        cluster=ClusterSpec(num_nodes=4, gpus_per_node=2, nodes_per_rack=2),
        strategy=ParallelismSpec(tensor_parallel=2, pipeline_parallel=4),
        scale=scale,
        seed=seed,
    )
    try:
        engine = build_engine(
            engine_name,
            job,
            ECCheckConfig(k=2, m=2, encode_threads=2, engine=engine_name),
            group_size=2,
        )
    except CheckpointError as exc:
        raise ReproError(
            f"unknown engine {engine_name!r}; choose from "
            f"{', '.join(engine_names())}"
        ) from exc
    return job, engine


def _snapshot_cache_gauges(tracer, engine) -> None:
    """Surface the compile/decode/autotune cache counters as gauges."""
    from repro.ec import autotune_cache_info, schedule_cache_info

    for key, value in schedule_cache_info().items():
        tracer.metrics.gauge(f"cache.{key}").set(float(value))
    for key, value in autotune_cache_info().items():
        tracer.metrics.gauge(f"cache.autotune_{key}").set(float(value))
    code = getattr(engine, "code", None)
    if code is not None and hasattr(code, "decode_cache_info"):
        for key, value in code.decode_cache_info().items():
            tracer.metrics.gauge(f"cache.decode_{key}").set(float(value))


def _phase_table(title: str, totals: dict[str, float], want: dict[str, float]) -> list[str]:
    lines = [title, f"  {'phase':<28} {'traced_s':>12} {'reports_s':>12} {'share':>7}"]
    grand = sum(totals.values())
    shares = normalise_breakdown(totals) if grand > 0 else {p: 0.0 for p in totals}
    for phase in sorted(totals):
        lines.append(
            f"  {phase:<28} {totals[phase]:>12.6f} {want.get(phase, 0.0):>12.6f} "
            f"{shares[phase]:>6.1%}"
        )
    lines.append(f"  {'total':<28} {grand:>12.6f}")
    return lines


def run_traced_job(
    engine_name: str = "eccheck",
    iterations: int = 8,
    interval: int = 2,
    backup_every: int = 2,
    fail_nodes: tuple[int, ...] = (1,),
    model: str = "gpt2-h1024-L16",
    scale: float = 5e-4,
    seed: int = 0,
    output: str = "TRACE_run.jsonl",
    out_dir: str | None = None,
    rel_tol: float = 1e-9,
    keep_failed: bool = False,
    tier_memory_versions: int = 0,
    out=None,
) -> int:
    """Run a traced save/restore job; return 0 iff the trace reconciles.

    Emits ``output`` (JSONL, schema v1) and prints per-phase sim-time
    tables for the save and restore paths, each cross-checked against the
    engine's report breakdowns via
    :func:`repro.obs.trace_io.crosscheck_totals`.

    ``tier_memory_versions > 0`` runs the manager under a
    :class:`~repro.checkpoint.tiering.TierPolicy` with that hot-tier
    depth (engines with the tier API only); demotion spans are
    cross-checked against the demotion report breakdowns the same way.

    ``out_dir`` places the trace file (and any relative ``output`` path)
    inside a directory, creating it if needed.  The trace is written via
    a temporary ``<output>.tmp`` file that is promoted only when the
    crosscheck reconciles; on failure the temp file is removed (pass
    ``keep_failed=True`` to promote it anyway for debugging), so a failed
    run never leaves a partial/misleading JSONL behind.
    """
    out = out or sys.stdout
    if output and out_dir:
        os.makedirs(out_dir, exist_ok=True)
        output = os.path.join(out_dir, os.path.basename(output))
    job, engine = build_traced_job(engine_name, model, scale, seed)
    supports_backup = hasattr(engine, "save_remote_backup")
    tier_policy = None
    if tier_memory_versions > 0:
        if not hasattr(engine, "demote_version"):
            raise ReproError(
                f"engine {engine_name!r} has no tier API; "
                "--tier-keep needs eccheck"
            )
        tier_policy = TierPolicy(memory_versions=tier_memory_versions)
    with obs.use_tracer() as tracer:
        manager = CheckpointManager(
            job,
            engine,
            interval=interval,
            remote_backup_every=backup_every if supports_backup else 0,
            tier_policy=tier_policy,
        )
        for _ in range(iterations):
            job.advance()
            manager.step()
        recovery_reports = []
        if fail_nodes:
            recovery_reports.append(manager.on_failure(set(fail_nodes)))
        _snapshot_cache_gauges(tracer, engine)

    spans = [r for r in tracer.records() if r["type"] == "span"]
    problems = trace_io.validate_spans(spans)

    save_breakdowns = [r.breakdown for r in manager.stats.save_reports]
    save_breakdowns += [r.breakdown for r in manager.stats.backup_reports]
    save_totals = trace_io.phase_totals(spans, kind="save")
    problems += trace_io.crosscheck_totals(save_totals, save_breakdowns, rel_tol)
    restore_breakdowns = [r.breakdown for r in recovery_reports]
    restore_totals = trace_io.phase_totals(spans, kind="restore")
    problems += trace_io.crosscheck_totals(restore_totals, restore_breakdowns, rel_tol)
    tier_breakdowns = [r.breakdown for r in manager.stats.demote_reports]
    tier_totals = trace_io.phase_totals(spans, kind="tier")
    problems += trace_io.crosscheck_totals(tier_totals, tier_breakdowns, rel_tol)
    replicate_breakdowns = [
        r.breakdown for r in manager.stats.replicate_reports
    ]
    replicate_totals = trace_io.phase_totals(spans, kind="replicate")
    problems += trace_io.crosscheck_totals(
        replicate_totals, replicate_breakdowns, rel_tol
    )

    events = len(tracer.records()) - len(spans)
    print(
        f"traced {engine_name}: {manager.stats.checkpoints} checkpoints, "
        f"{manager.stats.remote_backups} backups, "
        f"{manager.stats.recoveries} recoveries "
        f"({len(spans)} spans, {events} events)",
        file=out,
    )
    if save_totals:
        table = _phase_table(
            "save phases:", save_totals, sum_breakdowns(save_breakdowns)
        )
        print("\n".join(table), file=out)
    if restore_totals:
        table = _phase_table(
            "restore phases:", restore_totals, sum_breakdowns(restore_breakdowns)
        )
        print("\n".join(table), file=out)
    if replicate_totals:
        table = _phase_table(
            "replicate phases:",
            replicate_totals,
            sum_breakdowns(replicate_breakdowns),
        )
        print("\n".join(table), file=out)
        print(
            f"  gradient stream: {manager.stats.replications} replications "
            f"({manager.stats.bytes_replicated} B over the trunk), "
            f"{manager.stats.replayed_iterations} iterations replayed",
            file=out,
        )
    if tier_totals:
        table = _phase_table(
            "tier phases:", tier_totals, sum_breakdowns(tier_breakdowns)
        )
        print("\n".join(table), file=out)
        print(
            f"  tier stack: {manager.stats.demotions} demotions "
            f"({manager.stats.bytes_to_disk} B to disk), "
            f"{manager.stats.evictions} evictions "
            f"({manager.stats.disk_bytes_evicted} B reclaimed)",
            file=out,
        )
    counters = tracer.metrics.snapshot()["counters"]
    for name in sorted(counters):
        print(f"  counter {name} = {counters[name]}", file=out)
    histograms = tracer.metrics.snapshot()["histograms"]
    for name in sorted(histograms):
        h = histograms[name]
        if not h["count"]:
            continue
        print(
            f"  histogram {name}: n={h['count']} mean={h['mean']:.6f} "
            f"p50={h['p50']:.6f} p95={h['p95']:.6f} p99={h['p99']:.6f} "
            f"max={h['max']:.6f}",
            file=out,
        )
    if output:
        tmp_path = output + ".tmp"
        try:
            written = trace_io.write_jsonl(
                tracer,
                tmp_path,
                engine=engine_name,
                model=model,
                scale=scale,
                seed=seed,
                iterations=iterations,
                interval=interval,
                nodes=job.cluster.num_nodes,
            )
        except BaseException:
            if os.path.exists(tmp_path):
                os.remove(tmp_path)
            raise
        if problems and not keep_failed:
            os.remove(tmp_path)
            print(
                f"crosscheck failed; removed temp trace {tmp_path}", file=out
            )
        else:
            os.replace(tmp_path, output)
            print(f"trace written to {output} ({written} records)", file=out)
    if problems:
        for problem in problems:
            print(f"TRACE PROBLEM: {problem}", file=out)
        return 1
    print(f"crosscheck OK: phase totals match reports within {rel_tol:g}", file=out)
    return 0

"""Command-line interface: run any paper experiment from the shell.

Usage::

    python -m repro list                 # show available experiments
    python -m repro run fig10            # regenerate one table/figure
    python -m repro run all              # regenerate everything
    python -m repro quickstart           # the save/crash/restore demo

Every experiment prints the same ASCII table its benchmark target checks.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro._version import __version__


def _registry() -> dict[str, tuple[str, Callable]]:
    """Experiment name -> (description, driver)."""
    from repro.bench import experiments as E

    return {
        "fig3": ("recovery rate, 2000-node cluster", E.fig3_recovery_rate),
        "fig4": ("serialization overhead vs bandwidth", E.fig4_serialization_overhead),
        "table1": ("model configurations", E.table1_model_configs),
        "fig10": ("checkpointing time, all engines", E.fig10_checkpoint_time),
        "fig11": ("ECCheck time breakdown", E.fig11_time_breakdown),
        "fig12": ("iteration time vs checkpoint frequency", E.fig12_iteration_overhead),
        "fig13": ("recovery time, two failure scenarios", E.fig13_recovery_time),
        "fig14": ("scalability 4-32 GPUs", E.fig14_scalability),
        "fig15": ("fault-tolerance capacity", E.fig15_fault_tolerance),
        "comm-volume": ("Sec. V-F communication volume", E.comm_volume_scaling),
        "goodput": ("campaign goodput under failures", E.goodput_comparison),
        "ablation-placement": ("sweep-line vs naive placement", E.ablation_placement),
        "ablation-pipelining": ("pipelined vs serial step 3", E.ablation_pipelining),
        "ablation-schedule": ("smart vs dumb XOR schedules", E.ablation_xor_schedule),
        "ablation-cauchy": ("original vs good Cauchy matrix", E.ablation_cauchy_matrix),
        "ablation-throughput": ("measured encode throughput", E.ablation_encoding_throughput),
        "ablation-racks": ("rack-aligned vs transversal groups", E.ablation_rack_aware_grouping),
        "ablation-incremental": ("full vs delta checkpointing", E.ablation_incremental_checkpointing),
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ECCheck reproduction: regenerate the paper's experiments.",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment name from 'list', or 'all'")

    sub.add_parser("quickstart", help="save / crash two nodes / restore demo")

    bench = sub.add_parser(
        "bench-encode",
        help="measure encode/decode throughput of the XOR kernel layer",
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="small-payload smoke run that asserts the fast-path speedups",
    )
    bench.add_argument(
        "--payload-mib",
        type=float,
        default=None,
        help="payload size in MiB (default 64, or 4 with --quick)",
    )
    bench.add_argument(
        "--repeats", type=int, default=3, help="timing repetitions (best-of)"
    )
    bench.add_argument(
        "--threads", type=int, default=4, help="thread-pool size for pool_encode"
    )
    bench.add_argument(
        "--output",
        default="BENCH_encode_throughput.json",
        help="JSON results path ('' to skip writing)",
    )
    bench.add_argument(
        "--autotune",
        action="store_true",
        help="measure schedule/kernel variants per shape first and persist "
        "the winners to the autotune cache (REPRO_AUTOTUNE_CACHE or "
        ".repro_autotune.json)",
    )

    chaos = sub.add_parser(
        "chaos",
        help="fault-injection campaign: save/crash/restore cycles with "
        "recovery invariants checked every cycle",
    )
    chaos.add_argument(
        "--episodes", type=int, default=50, help="number of seeded episodes"
    )
    chaos.add_argument("--seed", type=int, default=0, help="campaign seed")
    chaos.add_argument(
        "--engines",
        default="eccheck,base1,base2,base3",
        help="comma-separated engine names to cycle through",
    )
    chaos.add_argument(
        "--max-rounds",
        type=int,
        default=3,
        help="max save/crash/restore rounds per episode",
    )
    chaos.add_argument(
        "--output",
        default="CHAOS_report.json",
        help="JSON campaign report path ('' to skip writing)",
    )
    chaos.add_argument(
        "--trace",
        action="store_true",
        help="run each episode under a tracer and attach per-episode "
        "trace summaries to the report",
    )
    chaos.add_argument(
        "--timeline",
        action="store_true",
        help="attach a per-episode telemetry timeline (derived clock) to "
        "the report; every other field stays byte-identical",
    )
    chaos.add_argument(
        "--timeline-period",
        type=float,
        default=60.0,
        help="sim-seconds between telemetry samples (default 60)",
    )
    chaos.add_argument(
        "--tiers",
        action="store_true",
        help="run the tier-loss campaign instead (ECCheck under a tier "
        "policy; memory-wipe / disk-rot / disk-replacement scenarios "
        "recovered through the memory -> disk -> remote walk); default "
        "output becomes TIER_report.json",
    )

    hybrid = sub.add_parser(
        "hybrid",
        help="replay-aware differential campaign: eccheck vs gradrep vs "
        "hybrid against shared scenarios, with the iterations-lost vs "
        "steady-state-overhead crossover table",
    )
    hybrid.add_argument(
        "--episodes", type=int, default=20, help="number of seeded episodes"
    )
    hybrid.add_argument("--seed", type=int, default=0, help="campaign seed")
    hybrid.add_argument(
        "--engines",
        default="eccheck,gradrep,hybrid",
        help="comma-separated engines to run against each shared scenario",
    )
    hybrid.add_argument(
        "--max-rounds",
        type=int,
        default=3,
        help="max train/crash/fail rounds per episode",
    )
    hybrid.add_argument(
        "--interval",
        type=int,
        default=3,
        help="checkpoint interval (iterations); also scales the "
        "log-depth alert thresholds",
    )
    hybrid.add_argument(
        "--iteration-s",
        type=float,
        default=1.0,
        help="baseline iteration seconds for the crossover computation",
    )
    hybrid.add_argument(
        "--output",
        default="HYBRID_report.json",
        help="JSON campaign report path ('' to skip writing)",
    )
    hybrid.add_argument(
        "--timeline",
        action="store_true",
        help="attach per-run telemetry timelines (log-depth signal, "
        "online alert rules) to the report",
    )
    hybrid.add_argument(
        "--timeline-period",
        type=float,
        default=60.0,
        help="sim-seconds between telemetry samples (default 60)",
    )
    hybrid.add_argument(
        "--fail-on-alerts",
        action="store_true",
        help="exit non-zero when any violation-severity alert fired "
        "(requires --timeline)",
    )

    elastic = sub.add_parser(
        "elastic",
        help="elastic-membership chaos campaign: degraded checkpointing, "
        "spare joins with background repair, and adaptive (k, m) "
        "reconfiguration, invariants checked every cycle",
    )
    elastic.add_argument(
        "--episodes", type=int, default=30, help="number of seeded episodes"
    )
    elastic.add_argument("--seed", type=int, default=0, help="campaign seed")
    elastic.add_argument(
        "--max-rounds",
        type=int,
        default=3,
        help="max train/checkpoint/fail rounds per episode",
    )
    elastic.add_argument(
        "--redundancy-floor",
        type=int,
        default=1,
        help="minimum parity count a degraded regroup may keep; below it "
        "checkpointing is refused until a spare joins",
    )
    elastic.add_argument(
        "--output",
        default="ELASTIC_report.json",
        help="JSON campaign report path ('' to skip writing)",
    )
    elastic.add_argument(
        "--trace",
        action="store_true",
        help="run each episode under a tracer and attach per-episode "
        "trace summaries to the report",
    )
    elastic.add_argument(
        "--timeline",
        action="store_true",
        help="attach a per-episode telemetry timeline (manual sim clock, "
        "eager degraded-window edges) to the report; every other field "
        "stays byte-identical",
    )
    elastic.add_argument(
        "--timeline-period",
        type=float,
        default=60.0,
        help="sim-seconds between telemetry samples (default 60)",
    )

    fleet = sub.add_parser(
        "fleet",
        help="multi-tenant fleet campaign: hundreds of jobs on one shared "
        "event loop with admission control, bandwidth arbitration, "
        "correlated failure domains and a fleet-wide spare pool",
    )
    fleet.add_argument(
        "--jobs", type=int, default=50, help="tenants per episode"
    )
    fleet.add_argument(
        "--episodes", type=int, default=1, help="number of seeded episodes"
    )
    fleet.add_argument("--seed", type=int, default=0, help="campaign seed")
    fleet.add_argument(
        "--arbitration",
        choices=("fair", "priority"),
        default="fair",
        help="shared-bandwidth arbitration policy",
    )
    fleet.add_argument(
        "--slots", type=int, default=64, help="machine slots in the fleet"
    )
    fleet.add_argument(
        "--spares", type=int, default=6, help="initial fleet spare inventory"
    )
    fleet.add_argument(
        "--duration-hours",
        type=float,
        default=8.0,
        help="failure-trace horizon in simulated hours",
    )
    fleet.add_argument(
        "--no-scaling",
        action="store_true",
        help="skip the jobs-vs-wall-clock scaling curve (CI smoke mode)",
    )
    fleet.add_argument(
        "--output",
        default="FLEET_report.json",
        help="JSON campaign report path ('' to skip writing)",
    )
    fleet.add_argument(
        "--timeline",
        action="store_true",
        help="sample fleet/tenant telemetry over sim time and attach a "
        "'timeline' section (with online SLO alerts) to each episode; "
        "every other report field stays byte-identical",
    )
    fleet.add_argument(
        "--timeline-period",
        type=float,
        default=60.0,
        help="sim-seconds between telemetry samples (default 60)",
    )
    fleet.add_argument(
        "--dashboard",
        default=None,
        metavar="HTML",
        help="write a self-contained HTML telemetry dashboard (implies "
        "--timeline)",
    )
    fleet.add_argument(
        "--fail-on-alerts",
        action="store_true",
        help="exit 1 if any severity-violation alert fired",
    )

    dashboard = sub.add_parser(
        "dashboard",
        help="render a self-contained HTML telemetry dashboard from a "
        "FLEET_report.json produced with --timeline",
    )
    dashboard.add_argument(
        "report", help="fleet report JSON (run `repro fleet --timeline`)"
    )
    dashboard.add_argument(
        "--output",
        default=None,
        help="HTML path (default: <report>.html)",
    )

    trace = sub.add_parser(
        "trace",
        help="run a traced checkpoint job; emit a JSONL trace plus a "
        "per-phase breakdown cross-checked against the engine reports",
    )
    trace.add_argument(
        "--engine",
        default="eccheck",
        choices=("eccheck", "base1", "base2", "base3", "gradrep", "hybrid"),
        help="checkpoint engine to trace",
    )
    trace.add_argument(
        "--iterations", type=int, default=8, help="training iterations to run"
    )
    trace.add_argument(
        "--interval", type=int, default=2, help="iterations between checkpoints"
    )
    trace.add_argument(
        "--backup-every",
        type=int,
        default=2,
        help="checkpoints between remote backups (engines that support it)",
    )
    trace.add_argument(
        "--fail",
        default="1",
        help="comma-separated node ids to fail after training ('' skips "
        "the restore leg)",
    )
    trace.add_argument("--seed", type=int, default=0, help="job seed")
    trace.add_argument(
        "--output",
        default="TRACE_run.jsonl",
        help="JSONL trace path ('' to skip writing)",
    )
    trace.add_argument(
        "--out-dir",
        default=None,
        help="directory to place the trace file in (created if missing)",
    )
    trace.add_argument(
        "--keep-failed",
        action="store_true",
        help="keep the trace file even when the crosscheck fails "
        "(default: the temp file is removed on failure)",
    )
    trace.add_argument(
        "--rel-tol",
        type=float,
        default=1e-9,
        help="relative tolerance for the phase-total crosscheck",
    )
    trace.add_argument(
        "--tier-keep",
        type=int,
        default=0,
        help="hot-tier depth: keep this many versions in host memory and "
        "demote colder ones to the local-disk tier after each save "
        "(0 disables the tier policy; eccheck only)",
    )

    export = sub.add_parser(
        "export-trace",
        help="convert a JSONL trace to Chrome trace-event JSON for "
        "chrome://tracing / Perfetto",
    )
    export.add_argument("trace", help="JSONL trace file from 'repro trace'")
    export.add_argument(
        "--output",
        default=None,
        help="Chrome-trace JSON path (default: <trace>.perfetto.json)",
    )

    analyze = sub.add_parser(
        "analyze",
        help="critical-path, utilization and idle-slot analysis of a "
        "JSONL trace; or, given a campaign report JSON with timeline "
        "sections, reconcile timeline-integrated degraded time against "
        "the per-tenant ledger at 1e-9",
    )
    analyze.add_argument(
        "trace",
        help="JSONL trace file from 'repro trace', or a campaign report "
        "JSON from 'repro fleet --timeline'",
    )

    history = sub.add_parser(
        "bench-history",
        help="append a bench result to the history and gate against the "
        "rolling baseline (exit 1 on regression)",
    )
    history.add_argument(
        "--input",
        default="BENCH_encode_throughput.json",
        help="bench results document to record",
    )
    history.add_argument(
        "--history",
        default="BENCH_history.jsonl",
        help="history JSONL to append to and gate against",
    )
    history.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="relative slowdown that fails the gate (default 0.15)",
    )
    history.add_argument(
        "--window",
        type=int,
        default=5,
        help="rolling-baseline window (prior comparable runs)",
    )
    history.add_argument(
        "--check-only",
        action="store_true",
        help="gate the newest existing history entry without appending",
    )
    history.add_argument(
        "--ratchet-ratio",
        type=float,
        default=0.9,
        help="ratcheting floor: fail when throughput drops below this "
        "fraction of the host's best recorded value (default 0.9)",
    )
    history.add_argument(
        "--no-ratchet",
        action="store_true",
        help="skip the ratcheting-floor check (rolling baseline only)",
    )

    selftest = sub.add_parser(
        "selftest",
        help="run the property-test suites under a bounded Hypothesis profile",
    )
    selftest.add_argument(
        "--profile",
        default="ci",
        choices=("dev", "ci", "thorough"),
        help="Hypothesis profile registered in tests/conftest.py",
    )
    return parser


def cmd_list(out) -> int:
    registry = _registry()
    width = max(len(name) for name in registry)
    for name, (description, _) in registry.items():
        print(f"  {name.ljust(width)}  {description}", file=out)
    return 0


def cmd_run(experiment: str, out) -> int:
    registry = _registry()
    if experiment == "all":
        names = list(registry)
    elif experiment in registry:
        names = [experiment]
    else:
        print(
            f"unknown experiment {experiment!r}; try 'repro list'",
            file=sys.stderr,
        )
        return 2
    for name in names:
        _, driver = registry[name]
        print(driver().render(), file=out)
        print(file=out)
    return 0


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return cmd_list(out)
    if args.command == "run":
        return cmd_run(args.experiment, out)
    if args.command == "quickstart":
        return _quickstart(out)
    if args.command == "chaos":
        return _chaos(args, out)
    if args.command == "hybrid":
        return _hybrid(args, out)
    if args.command == "elastic":
        return _elastic(args, out)
    if args.command == "fleet":
        return _fleet(args, out)
    if args.command == "dashboard":
        return _dashboard(args, out)
    if args.command == "trace":
        return _trace(args, out)
    if args.command == "export-trace":
        return _export_trace(args, out)
    if args.command == "analyze":
        return _analyze(args, out)
    if args.command == "bench-history":
        return _bench_history(args, out)
    if args.command == "selftest":
        return _selftest(args, out)
    if args.command == "bench-encode":
        from repro.bench.encode_throughput import main as bench_main

        payload = args.payload_mib
        if payload is None:
            payload = 4.0 if args.quick else 64.0
        return bench_main(
            payload_mib=payload,
            output=args.output,
            repeats=args.repeats,
            threads=args.threads,
            quick=args.quick,
            autotune=args.autotune,
            out=out,
        )
    raise AssertionError(f"unhandled command {args.command!r}")


def _chaos(args, out) -> int:
    """Run a chaos campaign; exit 0 iff no invariant was violated."""
    if args.tiers:
        return _tier_chaos(args, out)
    from repro.chaos.campaign import ChaosConfig, run_campaign

    engines = tuple(
        name.strip() for name in args.engines.split(",") if name.strip()
    )
    config = ChaosConfig(
        episodes=args.episodes,
        seed=args.seed,
        engines=engines,
        max_rounds=args.max_rounds,
        trace=args.trace,
        timeline=args.timeline,
        timeline_period_s=args.timeline_period,
    )
    report = run_campaign(config)
    print(report.render(), file=out)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(report.to_json() + "\n")
        print(f"report written to {args.output}", file=out)
    return 1 if report.violations else 0


def _hybrid(args, out) -> int:
    """Run the replay-aware differential campaign.

    Exit 0 iff no invariant was violated — and, with
    ``--fail-on-alerts``, no violation-severity alert fired.
    """
    from repro.chaos.hybrid_campaign import (
        HybridChaosConfig,
        run_hybrid_campaign,
    )

    if args.fail_on_alerts and not args.timeline:
        print("--fail-on-alerts requires --timeline", file=sys.stderr)
        return 2
    engines = tuple(
        name.strip() for name in args.engines.split(",") if name.strip()
    )
    config = HybridChaosConfig(
        episodes=args.episodes,
        seed=args.seed,
        engines=engines,
        max_rounds=args.max_rounds,
        interval=args.interval,
        iteration_s=args.iteration_s,
        timeline=args.timeline,
        timeline_period_s=args.timeline_period,
    )
    report = run_hybrid_campaign(config)
    print(report.render(), file=out)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(report.to_json() + "\n")
        print(f"report written to {args.output}", file=out)
    failed = bool(report.violations)
    if args.fail_on_alerts and report.alert_counts()["violation"]:
        print(
            f"FAILING: {report.alert_counts()['violation']} "
            f"violation-severity alert(s) fired",
            file=out,
        )
        failed = True
    return 1 if failed else 0


def _tier_chaos(args, out) -> int:
    """Run the tier-loss campaign; exit 0 iff no invariant was violated."""
    from repro.chaos.tier_campaign import TierChaosConfig, run_tier_campaign

    config = TierChaosConfig(
        episodes=args.episodes,
        seed=args.seed,
        max_rounds=args.max_rounds,
        trace=args.trace,
        timeline=args.timeline,
        timeline_period_s=args.timeline_period,
    )
    report = run_tier_campaign(config)
    print(report.render(), file=out)
    output = args.output
    if output == "CHAOS_report.json":  # the non-tier default; re-target it
        output = "TIER_report.json"
    if output:
        with open(output, "w", encoding="utf-8") as fh:
            fh.write(report.to_json() + "\n")
        print(f"report written to {output}", file=out)
    return 1 if report.violations else 0


def _elastic(args, out) -> int:
    """Run an elastic campaign; exit 0 iff no invariant was violated."""
    from repro.chaos.elastic_campaign import ElasticConfig, run_elastic_campaign

    config = ElasticConfig(
        episodes=args.episodes,
        seed=args.seed,
        max_rounds=args.max_rounds,
        redundancy_floor=args.redundancy_floor,
        trace=args.trace,
        timeline=args.timeline,
        timeline_period_s=args.timeline_period,
    )
    report = run_elastic_campaign(config)
    print(report.render(), file=out)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(report.to_json() + "\n")
        print(f"report written to {args.output}", file=out)
    return 1 if report.violations else 0


def _fleet(args, out) -> int:
    """Run a fleet campaign; exit 0 iff no invariant was violated."""
    import json

    from repro.fleet import FleetConfig, run_fleet_campaign, run_scaling_curve

    timeline = bool(args.timeline or args.dashboard)
    config = FleetConfig(
        jobs=args.jobs,
        episodes=args.episodes,
        seed=args.seed,
        arbitration=args.arbitration,
        fleet_slots=args.slots,
        spares=args.spares,
        duration_hours=args.duration_hours,
        timeline=timeline,
        timeline_period_s=args.timeline_period,
    )
    report = run_fleet_campaign(config)
    if not args.no_scaling and args.jobs >= 4:
        report.scaling = run_scaling_curve(config)
    print(report.render(), file=out)
    violation_alerts = 0
    if timeline:
        for episode in report.episodes:
            counts = (episode.timeline or {}).get("alerts", {}).get("counts", {})
            violation_alerts += counts.get("violation", 0)
            print(
                f"episode {episode.episode} telemetry: "
                f"{(episode.timeline or {}).get('samples', 0)} samples, "
                f"{counts.get('total', 0)} alert(s) "
                f"({counts.get('violation', 0)} violation)",
                file=out,
            )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(report.to_json() + "\n")
        print(f"report written to {args.output}", file=out)
    if args.dashboard:
        from repro.obs.dashboard import write_dashboard

        write_dashboard(
            json.loads(report.to_json(provenance=True)), args.dashboard
        )
        print(f"dashboard written to {args.dashboard}", file=out)
    if report.sub_quadratic is False:
        print("scaling curve is not sub-quadratic", file=out)
        return 1
    if args.fail_on_alerts and violation_alerts:
        print(
            f"{violation_alerts} severity-violation alert(s) fired", file=out
        )
        return 1
    return 1 if report.violations else 0


def _dashboard(args, out) -> int:
    """Render the HTML dashboard from an existing fleet report."""
    import json
    import os

    from repro.obs.dashboard import write_dashboard

    if not os.path.exists(args.report):
        print(f"report not found: {args.report}", file=sys.stderr)
        return 2
    with open(args.report, "r", encoding="utf-8") as fh:
        report = json.load(fh)
    if "episodes" not in report:
        print(
            f"{args.report} does not look like a fleet report "
            "(no 'episodes' section)",
            file=sys.stderr,
        )
        return 2
    if not any(e.get("timeline") for e in report["episodes"]):
        print(
            "warning: no episode carries a timeline section; "
            "re-run `repro fleet --timeline` for charts",
            file=out,
        )
    output = args.output or f"{args.report.removesuffix('.json')}.html"
    write_dashboard(report, output)
    print(f"dashboard written to {output}", file=out)
    return 0


def _trace(args, out) -> int:
    """Run a traced job; exit 0 iff the phase crosscheck reconciles."""
    from repro.obs.runner import run_traced_job

    fail_nodes = tuple(
        int(node) for node in args.fail.split(",") if node.strip()
    )
    return run_traced_job(
        engine_name=args.engine,
        iterations=args.iterations,
        interval=args.interval,
        backup_every=args.backup_every,
        fail_nodes=fail_nodes,
        seed=args.seed,
        output=args.output,
        out_dir=args.out_dir,
        rel_tol=args.rel_tol,
        keep_failed=args.keep_failed,
        tier_memory_versions=args.tier_keep,
        out=out,
    )


def _load_trace_or_fail(path: str):
    import os

    from repro.obs import load_trace

    if not os.path.exists(path):
        print(f"trace file not found: {path}", file=sys.stderr)
        return None
    return load_trace(path)


def _export_trace(args, out) -> int:
    """Convert a JSONL trace into Chrome trace-event JSON; 0 on success."""
    from repro.obs import export_chrome_trace, validate_chrome_trace, write_chrome_trace

    trace = _load_trace_or_fail(args.trace)
    if trace is None:
        return 2
    output = args.output or f"{args.trace}.perfetto.json"
    problems = validate_chrome_trace(export_chrome_trace(trace))
    events = write_chrome_trace(trace, output)
    print(f"wrote {output} ({events} trace events)", file=out)
    for problem in problems:
        print(f"EXPORT PROBLEM: {problem}", file=out)
    return 1 if problems else 0


def _analyze(args, out) -> int:
    """Analyze a JSONL trace; exit non-zero on structural problems.

    A campaign-report JSON (one top-level object with an ``episodes``
    list) is dispatched to the timeline reconciliation instead.
    """
    import json
    import os

    from repro.obs import analyze_trace, render_analysis, validate_spans

    if os.path.exists(args.trace):
        with open(args.trace, "r", encoding="utf-8") as fh:
            head = fh.read(1)
        if head == "{":
            # A JSONL trace also starts with "{" but is many documents;
            # only a whole-file JSON object with episodes is a report.
            try:
                with open(args.trace, "r", encoding="utf-8") as fh:
                    report = json.load(fh)
            except json.JSONDecodeError:
                report = None
            if isinstance(report, dict) and "crossover" in report:
                return _analyze_hybrid_report(args.trace, report, out)
            if isinstance(report, dict) and "episodes" in report:
                return _analyze_report_timelines(args.trace, report, out)
    trace = _load_trace_or_fail(args.trace)
    if trace is None:
        return 2
    problems = validate_spans(trace.spans)
    analysis = analyze_trace(trace)
    print(render_analysis(analysis), file=out)
    for problem in problems:
        print(f"TRACE PROBLEM: {problem}", file=out)
    return 1 if problems or analysis.crosscheck_problems else 0


def _analyze_hybrid_report(path: str, report: dict, out) -> int:
    """Re-verify a hybrid campaign's stored phase reconciliations.

    Each run embeds the traced phase sums and the summed report
    breakdowns per report kind (save / replicate / restore); re-running
    the 1e-9 crosscheck offline proves the stored report is internally
    consistent without re-running the campaign.
    """
    from repro.obs.trace_io import crosscheck_totals

    problems: list[str] = []
    checked = 0
    for episode in report.get("episodes", []):
        phases = episode.get("phases") or {}
        index = episode.get("episode", "?")
        engine = episode.get("engine", "?")
        kinds = []
        for kind, section in sorted(phases.items()):
            checked += 1
            kinds.append(kind)
            problems.extend(
                f"episode {index} ({engine}) {kind}: {p}"
                for p in crosscheck_totals(
                    section.get("traced", {}), [section.get("reported", {})]
                )
            )
        print(
            f"episode {index} ({engine}): "
            f"{'/'.join(kinds) or 'no'} phases reconciled at 1e-9",
            file=out,
        )
    if not checked:
        print(
            f"{path}: no phase sections to analyze (run `repro hybrid`)",
            file=out,
        )
        return 2
    for problem in problems:
        print(f"PHASE PROBLEM: {problem}", file=out)
    if not problems:
        print(
            f"phase crosscheck OK ({checked} reconciliations, "
            f"{len(report.get('violations', []))} campaign violations)",
            file=out,
        )
    return 1 if problems else 0


def _analyze_report_timelines(path: str, report: dict, out) -> int:
    """Reconcile every episode timeline against its degraded ledger."""
    from repro.obs.timeseries import crosscheck_timeline

    problems: list[str] = []
    checked = 0
    for episode in report.get("episodes", []):
        timeline = episode.get("timeline")
        if not timeline:
            continue
        checked += 1
        index = episode.get("episode", "?")
        tenants = episode.get("tenants", [])
        episode_problems = crosscheck_timeline(timeline, tenants)
        problems.extend(f"episode {index}: {p}" for p in episode_problems)
        counts = timeline.get("alerts", {}).get("counts", {})
        reconciled = sum(
            1 for t in tenants if t.get("name") in timeline.get("tenants", {})
        )
        print(
            f"episode {index}: {timeline.get('samples', 0)} samples, "
            f"{reconciled} tenant ledgers reconciled at 1e-9, "
            f"{counts.get('total', 0)} alert(s)",
            file=out,
        )
    if not checked:
        print(
            f"{path}: no timeline sections to analyze "
            "(run `repro fleet --timeline`)",
            file=out,
        )
        return 2
    for problem in problems:
        print(f"TIMELINE PROBLEM: {problem}", file=out)
    if not problems:
        print("timeline crosscheck OK", file=out)
    return 1 if problems else 0


def _bench_history(args, out) -> int:
    """Record/gate a bench run; exit 1 on regression, 2 on missing input."""
    import json
    import os

    from repro.obs.regression import (
        append_history,
        check_ratchet,
        check_regression,
        load_history,
        render_ratchet,
        render_result,
    )

    if args.check_only:
        history = load_history(args.history)
        if not history:
            print(f"no history at {args.history}", file=sys.stderr)
            return 2
    else:
        if not os.path.exists(args.input):
            print(
                f"bench results not found: {args.input} "
                "(run `repro bench-encode` first)",
                file=sys.stderr,
            )
            return 2
        with open(args.input, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        entry = append_history(doc, args.history)
        history = load_history(args.history)
        sha = entry["provenance"].get("git_sha", "unknown")[:12]
        print(
            f"recorded run {sha} ({len(history)} entries in {args.history})",
            file=out,
        )
    result = check_regression(
        history, threshold=args.threshold, window=args.window
    )
    print(render_result(result), file=out)
    failed = bool(result.regressions)
    if not args.no_ratchet:
        ratchet = check_ratchet(history, ratio=args.ratchet_ratio)
        print(render_ratchet(ratchet), file=out)
        failed = failed or bool(ratchet.violations)
    return 1 if failed else 0


def _selftest(args, out) -> int:
    """Run the property suites in a subprocess with a bounded profile."""
    import os
    import pathlib
    import subprocess

    root = pathlib.Path(__file__).resolve().parents[2]
    suites = [
        "tests/ec/test_fast_equivalence.py",
        "tests/core/test_placement.py",
        "tests/core/test_selection_properties.py",
        "tests/obs",
    ]
    missing = [s for s in suites if not (root / s).exists()]
    if missing:
        print(f"selftest: missing suites {missing} under {root}", file=sys.stderr)
        return 2
    env = dict(os.environ)
    env["REPRO_HYPOTHESIS_PROFILE"] = args.profile
    src = str(root / "src")
    env["PYTHONPATH"] = os.pathsep.join(
        [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    print(f"selftest: profile={args.profile} suites={' '.join(suites)}", file=out)
    result = subprocess.run(
        [sys.executable, "-m", "pytest", "-q", *suites], cwd=root, env=env
    )
    return result.returncode


def _quickstart(out) -> int:
    """Inline version of examples/quickstart.py for the CLI."""
    from repro.checkpoint.job import TrainingJob
    from repro.core.eccheck import ECCheckConfig, ECCheckEngine
    from repro.parallel.strategy import ParallelismSpec
    from repro.parallel.topology import ClusterSpec
    from repro.tensors.state_dict import state_dicts_equal

    job = TrainingJob.create(
        model="gpt2-5.3B",
        cluster=ClusterSpec(num_nodes=4, gpus_per_node=4),
        strategy=ParallelismSpec(tensor_parallel=4, pipeline_parallel=4),
        scale=2e-4,
    )
    engine = ECCheckEngine(job, ECCheckConfig(k=2, m=2))
    report = engine.save()
    print(
        f"save: {report.checkpoint_time:.2f}s total, "
        f"{report.stall_time:.2f}s training stall",
        file=out,
    )
    reference = job.snapshot_states()
    job.fail_nodes({0, 3})
    recovery = engine.restore({0, 3})
    exact = all(
        state_dicts_equal(job.state_of(w), reference[w])
        for w in range(job.world_size)
    )
    print(
        f"restore after nodes {{0, 3}} failed: {recovery.recovery_time:.2f}s, "
        f"bit-exact: {exact}",
        file=out,
    )
    return 0 if exact else 1


if __name__ == "__main__":  # pragma: no cover - exercised as `python -m repro.cli`
    sys.exit(main())

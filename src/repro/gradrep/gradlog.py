"""Replicated per-iteration gradient log (Checkmate-style, PAPERS.md).

Instead of snapshotting state every checkpoint interval, a gradient-
replication engine ships the *per-iteration update* — the XOR delta
between consecutive packetised states, computed by
:func:`repro.core.incremental.packet_delta` — to a cross-rack buddy node
every iteration.  Recovery is then **temporal**: restore the last
committed base checkpoint and re-apply the logged deltas in order.

Log entry layout in the engine's host store (per node):

* ``("grad", seq, worker)`` — the worker's XOR delta payload;
* ``("graddig", seq, worker)`` — CRC-32 of that payload;
* ``("gradmeta", seq, worker)`` — the worker's metadata blob *at that
  iteration* (tensor layout plus the non-tensor fields — iteration
  counter, optimizer step — that packet bytes alone cannot restore);
* ``("gradcommit", seq)`` — the commit record ``{"iteration",
  "base_version", "packet_size"}``, broadcast to **every** node last.

**Replay commit rule.**  Payload bytes land on the home node and its
buddy first; the commit record is broadcast only afterwards.  An entry
is replayable after a failure iff

1. every surviving node holds its commit record (a broadcast torn by a
   crash leaves at least one survivor without it — the entry is torn and
   must never be replayed),
2. for every writer, some surviving node out of {home, buddy} holds a
   payload whose digest verifies (bit rot demotes the entry to torn),
3. the entry's ``base_version`` matches the restored base and its seq is
   contiguous with the replayed prefix (a gap ends the replay).

The same rule is re-derived independently from raw storage by the chaos
oracle (:func:`repro.chaos.invariants.expected_recovery`), which is what
makes the hybrid campaign a real differential test.
"""

from __future__ import annotations

import numpy as np

from repro.core.incremental import apply_delta
from repro.core.integrity import chunk_digest, verify_chunk
from repro.errors import CheckpointError, RecoveryError


def buddy_of(node: int, num_nodes: int, nodes_per_rack: int | None) -> int:
    """The cross-rack replication buddy of ``node``.

    Shifting by the rack width pairs each node with one in the next rack
    (0<->2, 1<->3 on the 2x2 testbed), so the buddy copy survives a whole-
    rack loss and the replication flow genuinely crosses the trunk.  A
    single-rack cluster falls back to a shift of 1.
    """
    shift = nodes_per_rack if nodes_per_rack and nodes_per_rack < num_nodes else 1
    buddy = (node + shift) % num_nodes
    if buddy == node:
        raise CheckpointError(
            f"cannot pick a replication buddy for node {node} in a "
            f"{num_nodes}-node cluster"
        )
    return buddy


class GradientLog:
    """The gradient-log tail hanging off one committed base version.

    Owns only byte placement and the commit discipline; all timing lives
    in the engines.  ``fire`` is the owning engine's ``_fire`` so crash
    injection reaches every store/broadcast boundary.
    """

    def __init__(self, host, job, fire=None):
        self.host = host
        self.job = job
        self._fire = fire or (lambda point, **ctx: None)
        self.base_version: int | None = None
        self.base_iteration: int | None = None
        self.next_seq = 1
        #: Live entry seqs in append order (bookkeeping only — replay and
        #: the oracle always re-derive survivability from raw storage).
        self.seqs: list[int] = []

    # -- placement ------------------------------------------------------
    def home_of(self, worker: int) -> int:
        return self.job.node_of(worker)

    def buddy_node(self, node: int) -> int:
        cluster = self.job.cluster
        return buddy_of(
            node, cluster.num_nodes, getattr(cluster, "nodes_per_rack", None)
        )

    def depth(self) -> int:
        """Entries in the tail (the timeline's ``log_depth`` signal)."""
        return len(self.seqs)

    # -- lifecycle ------------------------------------------------------
    def rebase(self, base_version: int | None, base_iteration: int | None) -> None:
        """A new base checkpoint committed: the old tail is superseded."""
        self._scrub(set())
        self.seqs = []
        self.base_version = base_version
        self.base_iteration = base_iteration

    def _scrub(self, keep: set[int]) -> None:
        """Delete every log key whose seq is not in ``keep``.

        A *storage scan*, not a bookkeeping walk: a crash mid-append
        leaves debris under a seq that never made ``self.seqs``, and that
        debris must not outlive the next rebase/prune (the oracle
        re-derives replayability from raw keys and would otherwise see
        entries the engine no longer tracks).
        """
        for node in range(self.job.cluster.num_nodes):
            for key in list(self.host.keys(node)):
                if (
                    isinstance(key, tuple)
                    and key[0] in ("grad", "graddig", "gradmeta", "gradcommit")
                    and key[1] not in keep
                ):
                    self.host.delete(node, key)

    def prune_to(self, keep_seqs: list[int]) -> None:
        """Keep only ``keep_seqs`` (the replayed prefix); drop the rest —
        including debris of torn entries that never committed."""
        keep = set(keep_seqs)
        self._scrub(keep)
        self.seqs = [s for s in self.seqs if s in keep]

    # -- append ---------------------------------------------------------
    def append(
        self,
        iteration: int,
        deltas: dict[int, np.ndarray],
        metadata: dict[int, bytes],
        packet_size: int,
        worker_logical: dict[int, int] | None = None,
    ) -> int:
        """Write one entry: payloads home+buddy first, commit record last.

        ``worker_logical`` maps each writer to the full-scale dirty bytes
        its delta represents; the sums ride in the commit record so the
        replay path (and the oracle) can price fetches without trusting
        engine memory.  Returns the entry's seq.  Raises through the
        crash injector when armed — leaving a genuinely torn entry
        behind.
        """
        if self.base_version is None:
            raise CheckpointError("gradient log has no committed base version")
        seq = self.next_seq
        self.next_seq += 1
        self._fire("pre_grad_store", seq=seq, iteration=iteration)
        for worker, delta in deltas.items():
            home = self.home_of(worker)
            digest = chunk_digest(delta)
            for node in (home, self.buddy_node(home)):
                if node != home:
                    self._fire(
                        "mid_grad_replicate", seq=seq, worker=worker, dst=node
                    )
                # The buddy holds an independent copy: bit rot on one
                # replica must not be visible on the other.
                payload = delta if node == home else delta.copy()
                self.host.put(node, ("grad", seq, worker), payload)
                self.host.put(node, ("graddig", seq, worker), digest)
                self.host.put(node, ("gradmeta", seq, worker), metadata[worker])
        worker_logical = dict(worker_logical or {})
        record = {
            "iteration": int(iteration),
            "base_version": int(self.base_version),
            "packet_size": int(packet_size),
            "logical_bytes": int(sum(worker_logical.values())),
            "worker_logical": worker_logical,
        }
        self._fire("pre_grad_commit", seq=seq, iteration=iteration)
        for node in range(self.job.cluster.num_nodes):
            self._fire("mid_grad_broadcast", seq=seq, dst=node)
            self.host.put(node, ("gradcommit", seq), dict(record))
        self.seqs.append(seq)
        return seq

    # -- replay-side queries (survivor storage only) --------------------
    def committed_record(self, seq: int, live_nodes: list[int]) -> dict | None:
        """The commit record iff *every* live node holds it, else None."""
        record: dict | None = None
        for node in live_nodes:
            if not self.host.contains(node, ("gradcommit", seq)):
                return None
            found = self.host.get(node, ("gradcommit", seq))
            if record is None:
                record = found
            elif found != record:
                return None
        return record

    def entry_intact(self, seq: int, live_nodes: list[int]) -> bool:
        """True iff every writer's payload verifies on some survivor."""
        live = set(live_nodes)
        for worker in self.job.writers:
            home = self.home_of(worker)
            if not any(
                self._holds_verified(node, seq, worker)
                for node in (home, self.buddy_node(home))
                if node in live
            ):
                return False
        return True

    def _holds_verified(self, node: int, seq: int, worker: int) -> bool:
        if not (
            self.host.contains(node, ("grad", seq, worker))
            and self.host.contains(node, ("graddig", seq, worker))
            and self.host.contains(node, ("gradmeta", seq, worker))
        ):
            return False
        return verify_chunk(
            self.host.get(node, ("grad", seq, worker)),
            self.host.get(node, ("graddig", seq, worker)),
        )

    def replayable_tail(
        self, base_version: int, live_nodes: list[int]
    ) -> list[tuple[int, dict]]:
        """Committed, intact, contiguous entries based on ``base_version``.

        Stops at the first torn/missing entry — replaying past a gap
        would apply deltas against the wrong predecessor state.
        """
        tail: list[tuple[int, dict]] = []
        for seq in self.seqs:
            record = self.committed_record(seq, live_nodes)
            if record is None or record["base_version"] != base_version:
                break
            if not self.entry_intact(seq, live_nodes):
                break
            tail.append((seq, record))
        return tail

    def collect(
        self, seq: int, worker: int, live_nodes: list[int]
    ) -> tuple[np.ndarray, bytes, bool]:
        """A verified ``(payload, metadata, from_buddy)`` for one writer.

        Raises:
            RecoveryError: when no survivor holds a verified copy.
        """
        live = set(live_nodes)
        home = self.home_of(worker)
        for node in (home, self.buddy_node(home)):
            if node in live and self._holds_verified(node, seq, worker):
                return (
                    self.host.get(node, ("grad", seq, worker)),
                    self.host.get(node, ("gradmeta", seq, worker)),
                    node != home,
                )
        raise RecoveryError(
            f"gradient-log entry seq={seq} worker={worker} has no verified "
            f"surviving copy"
        )

    def replay_packet(
        self,
        base_payload: np.ndarray,
        worker: int,
        tail: list[tuple[int, dict]],
        live_nodes: list[int],
    ) -> tuple[np.ndarray, bytes | None, int]:
        """Apply the tail's deltas for one worker onto its base packet.

        Returns ``(payload, metadata_of_last_entry, buddy_fetches)``;
        metadata is ``None`` for an empty tail (the base's own metadata
        rules).
        """
        payload = base_payload
        metadata: bytes | None = None
        buddy_fetches = 0
        for seq, _record in tail:
            delta, meta, from_buddy = self.collect(seq, worker, live_nodes)
            payload = apply_delta(payload, delta)
            metadata = meta
            buddy_fetches += int(from_buddy)
        return payload, metadata, buddy_fetches

    # -- redundancy -----------------------------------------------------
    def restore_redundancy(self, wiped_nodes: set[int]) -> int:
        """Re-replicate surviving entries onto wiped ranks.

        After recovery the tail must tolerate the next failure like any
        other entry: home/buddy copies and commit records that lived on a
        wiped rank are re-pushed from survivors.  Returns logical real
        bytes copied (the engine prices the transfer).
        """
        copied = 0
        for seq in self.seqs:
            live = [
                n
                for n in range(self.job.cluster.num_nodes)
                if n not in wiped_nodes
            ]
            record = self.committed_record(seq, live)
            if record is None:
                continue
            for worker in self.job.writers:
                home = self.home_of(worker)
                buddy = self.buddy_node(home)
                holders = [
                    n for n in (home, buddy)
                    if self._holds_verified(n, seq, worker)
                ]
                if not holders:
                    continue
                source = holders[0]
                for node in (home, buddy):
                    if node not in holders:
                        payload = self.host.get(
                            source, ("grad", seq, worker)
                        ).copy()
                        self.host.put(node, ("grad", seq, worker), payload)
                        self.host.put(
                            node,
                            ("graddig", seq, worker),
                            self.host.get(source, ("graddig", seq, worker)),
                        )
                        self.host.put(
                            node,
                            ("gradmeta", seq, worker),
                            self.host.get(source, ("gradmeta", seq, worker)),
                        )
                        copied += payload.nbytes
            for node in wiped_nodes:
                self.host.put(node, ("gradcommit", seq), dict(record))
        return copied

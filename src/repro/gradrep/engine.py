"""The ``gradrep`` engine: per-iteration gradient replication.

Checkmate-style protection (PAPERS.md): periodic **anchor** snapshots
replicated to a cross-rack buddy node, plus a per-iteration gradient log
(see :mod:`repro.gradrep.gradlog`) riding the collective traffic's trunk
through a :class:`~repro.sim.network.PiggybackChannel`.  Recovery is
temporal: restore the newest committed anchor, then replay the log tail
— the engine that loses *iterations at most one deep* instead of a whole
checkpoint interval, at the price of paying replication bandwidth every
single iteration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.checkpoint.base import (
    CheckpointEngine,
    RecoveryReport,
    ReplicationReport,
    SaveReport,
)
from repro.checkpoint.job import TrainingJob
from repro.core.incremental import packet_delta
from repro.core.integrity import chunk_digest, verify_chunk
from repro.core.protocol import (
    build_worker_checkpoint,
    packet_size_for,
    restore_state_dict,
)
from repro.errors import CheckpointError, RecoveryError
from repro.gradrep.gradlog import GradientLog
from repro.sim.network import PiggybackChannel, TransferRequest, gbps


def _canonical_state_dict(state_dict):
    """Recursively key-sort a state dict (tensors shared, not copied).

    Packet layout follows dict *insertion* order, and a restore can hand
    back an equal-valued dict in a different order (e.g. optimizer
    entries first) — XOR deltas against a re-packetised base would then
    misapply.  Sorting makes the gradrep packet layout a function of the
    state's *values*, so any byte-equal state re-packetises identically.
    """
    if isinstance(state_dict, dict):
        return {
            key: _canonical_state_dict(state_dict[key])
            for key in sorted(state_dict, key=repr)
        }
    return state_dict


@dataclass(frozen=True)
class GradRepConfig:
    """Knobs of the gradient-replication engine.

    ``collective_weight`` / ``replication_weight`` shape the piggyback
    share of the cross-rack trunk (see
    :class:`~repro.sim.network.PiggybackChannel`); ``delta_block_size``
    is the dirty-block granularity fed to
    :func:`~repro.core.incremental.packet_delta`.
    """

    packet_alignment: int = 64
    delta_block_size: int = 64 * 1024
    collective_weight: float = 3.0
    replication_weight: float = 1.0


class GradRepEngine(CheckpointEngine):
    """Anchor replication + gradient-log tail, all in host memory."""

    name = "gradrep"

    crash_points = (
        "post_snapshot_packets",
        "mid_anchor_replicate",
        "pre_anchor_commit",
        "mid_anchor_broadcast",
        "pre_grad_store",
        "mid_grad_replicate",
        "pre_grad_commit",
        "mid_grad_broadcast",
    )

    def __init__(self, job: TrainingJob, config: GradRepConfig | None = None):
        super().__init__(job)
        self.config = config or GradRepConfig()
        self.piggyback = PiggybackChannel(
            job.time_model,
            collective_weight=self.config.collective_weight,
            replication_weight=self.config.replication_weight,
        )
        self.log = GradientLog(self.host, job, fire=self._fire)
        #: Last replicated packet bytes per writer — the XOR base of the
        #: next delta.  Cleared by restore/reconfigure; an empty dict
        #: means the next replicate must wait for a fresh anchor.
        self._stream_packets: dict[int, np.ndarray] = {}
        self._packet_size: int | None = None

    # ------------------------------------------------------------------
    def _current_packet_size(self) -> int:
        if self._packet_size is None:
            from repro.tensors.state_dict import tensor_items

            self._packet_size = packet_size_for(
                [
                    sum(t.nbytes for _, t in tensor_items(self.job.state_of(w)))
                    for w in self.job.writers
                ],
                alignment=self.config.packet_alignment,
            )
        return self._packet_size

    def _build_packets(self) -> dict[int, "object"]:
        """Packetise every writer's live state at the common size."""
        size = self._current_packet_size()
        return {
            worker: build_worker_checkpoint(
                worker, _canonical_state_dict(self.job.state_of(worker)), size
            )
            for worker in self.job.writers
        }

    def anchor_key(self, version: int, kind: str, worker: int) -> tuple:
        return (kind, version, worker)

    # ------------------------------------------------------------------
    # Anchor save: full packets replicated home + buddy, commit last.
    # ------------------------------------------------------------------
    def save(self) -> SaveReport:
        tracer = obs.get_tracer()
        with tracer.span(
            f"{self.name}.save", kind="save", version=self.version + 1
        ) as span:
            report = self._save_impl()
            span.add_sim(report.checkpoint_time)
            obs.record_phases(tracer, span, report.breakdown, kind="save")
            if tracer.enabled:
                tracer.metrics.counter("p2p.bytes_inter_node").inc(
                    report.bytes_inter_node
                )
        return report

    def _save_impl(self) -> SaveReport:
        self.version += 1
        version = self.version
        tm = self.job.time_model
        checkpoints = self._build_packets()
        dtoh_times = [0.0]
        bytes_dtoh = 0
        for worker, ckpt in checkpoints.items():
            logical = self.job.logical_shard_bytes(worker)
            bytes_dtoh += logical
            dtoh_times.append(tm.dtoh_time(logical))
            home = self.log.home_of(worker)
            self.host.put(
                home, self.anchor_key(version, "apkt", worker),
                ckpt.packet.payload,
            )
            self.host.put(
                home, self.anchor_key(version, "adig", worker),
                chunk_digest(ckpt.packet.payload),
            )
            self.host.put(
                home, self.anchor_key(version, "ameta", worker),
                ckpt.metadata_blob,
            )
        stall = max(dtoh_times)
        self._fire("post_snapshot_packets", version=version)

        # Buddy replication rides the shared trunk (piggyback pricing).
        trunk_bytes = 0
        for worker, ckpt in checkpoints.items():
            home = self.log.home_of(worker)
            buddy = self.log.buddy_node(home)
            self._fire(
                "mid_anchor_replicate", version=version, worker=worker,
                dst=buddy,
            )
            for kind, value in (
                # An independent copy: bit rot on one anchor replica
                # must not be visible on the other.
                ("apkt", ckpt.packet.payload.copy()),
                ("adig", chunk_digest(ckpt.packet.payload)),
                ("ameta", ckpt.metadata_blob),
            ):
                self.host.put(buddy, self.anchor_key(version, kind, worker), value)
            trunk_bytes += self.job.logical_shard_bytes(worker)
        slice_ = self.piggyback.transfer(trunk_bytes)

        # Commit record broadcast — byte work first, metadata last.
        meta_bytes = sum(len(c.metadata_blob) for c in checkpoints.values())
        record = {"iteration": int(self.job.iteration)}
        self._fire("pre_anchor_commit", version=version)
        for node in range(self.job.cluster.num_nodes):
            self._fire("mid_anchor_broadcast", version=version, dst=node)
            self.host.put(node, ("anchor", version), dict(record))
        commit_time = self._trunk_time(meta_bytes * self.job.cluster.num_nodes)

        # The anchor supersedes the old tail and re-bases the stream.
        self.log.rebase(version, self.job.iteration)
        self._stream_packets = {
            worker: ckpt.packet.payload.copy()
            for worker, ckpt in checkpoints.items()
        }
        return SaveReport(
            engine=self.name,
            version=version,
            stall_time=stall,
            checkpoint_time=stall + slice_.seconds + commit_time,
            breakdown={
                "snapshot_dtoh": stall,
                "anchor_piggyback": slice_.seconds,
                "anchor_commit": commit_time,
            },
            bytes_dtoh=bytes_dtoh,
            bytes_inter_node=trunk_bytes,
        )

    # ------------------------------------------------------------------
    # Per-iteration replication: XOR delta home + buddy, commit last.
    # ------------------------------------------------------------------
    def replicate_iteration(self) -> ReplicationReport:
        tracer = obs.get_tracer()
        with tracer.span(
            f"{self.name}.replicate",
            kind="replicate",
            iteration=self.job.iteration,
        ) as span:
            report = self._replicate_impl()
            span.add_sim(report.replicate_time)
            obs.record_phases(tracer, span, report.breakdown, kind="replicate")
            if tracer.enabled:
                tracer.metrics.counter("gradrep.bytes_replicated").inc(
                    report.bytes_replicated
                )
                tracer.metrics.gauge("gradrep.log_depth").set(report.log_depth)
        return report

    def _replicate_impl(self) -> ReplicationReport:
        if not self._stream_packets or self.log.base_version is None:
            raise CheckpointError(
                f"{self.name}: no committed base to replicate against — "
                f"save an anchor first"
            )
        tm = self.job.time_model
        checkpoints = self._build_packets()
        deltas: dict[int, np.ndarray] = {}
        metadata: dict[int, bytes] = {}
        worker_logical: dict[int, int] = {}
        dtoh_times = [0.0]
        for worker, ckpt in checkpoints.items():
            old = self._stream_packets[worker]
            new = ckpt.packet.payload
            if old.nbytes != new.nbytes:
                raise CheckpointError(
                    f"packet size changed mid-stream for worker {worker}: "
                    f"{old.nbytes} -> {new.nbytes}"
                )
            delta, summary = packet_delta(
                old, new, block_size=self.config.delta_block_size
            )
            deltas[worker] = delta
            metadata[worker] = ckpt.metadata_blob
            logical_dirty = int(
                round(
                    summary.dirty_fraction
                    * self.job.logical_shard_bytes(worker)
                )
            )
            worker_logical[worker] = logical_dirty
            dtoh_times.append(tm.dtoh_time(logical_dirty))
        dtoh = max(dtoh_times)
        trunk_bytes = sum(worker_logical.values())
        slice_ = self.piggyback.transfer(trunk_bytes)
        seq = self.log.append(
            self.job.iteration,
            deltas,
            metadata,
            packet_size=self._current_packet_size(),
            worker_logical=worker_logical,
        )
        meta_bytes = sum(len(m) for m in metadata.values())
        commit_time = self._trunk_time(meta_bytes * self.job.cluster.num_nodes)
        for worker, ckpt in checkpoints.items():
            self._stream_packets[worker] = ckpt.packet.payload.copy()
        return ReplicationReport(
            engine=self.name,
            seq=seq,
            iteration=self.job.iteration,
            base_version=self.log.base_version,
            replicate_time=dtoh + slice_.seconds + commit_time,
            breakdown={
                "replicate_dtoh": dtoh,
                "replicate_piggyback": slice_.seconds,
                "replicate_commit": commit_time,
            },
            bytes_replicated=trunk_bytes,
            log_depth=self.log.depth(),
            trunk_fraction=slice_.fraction,
        )

    def log_depth(self) -> int:
        return self.log.depth()

    def can_replicate(self) -> bool:
        """True when a committed base exists to delta against.

        False right after construction or after a restore that dropped
        the stream — the manager then skips replication until the next
        save re-bases it.
        """
        return bool(self._stream_packets) and self.log.base_version is not None

    def _trunk_time(self, nbytes: int) -> float:
        """Seconds for ``nbytes`` over the full inter-node trunk."""
        return nbytes / gbps(self.job.time_model.inter_node_gbps)

    # ------------------------------------------------------------------
    # Recovery: newest committed anchor + bounded replay.
    # ------------------------------------------------------------------
    def _anchor_recoverable(self, version: int, live_nodes: list[int]) -> bool:
        live = set(live_nodes)
        for node in live_nodes:
            if not self.host.contains(node, ("anchor", version)):
                return False
        for worker in self.job.writers:
            home = self.log.home_of(worker)
            if not any(
                self._anchor_verified(node, version, worker)
                for node in (home, self.log.buddy_node(home))
                if node in live
            ):
                return False
        return True

    def _anchor_verified(self, node: int, version: int, worker: int) -> bool:
        if not all(
            self.host.contains(node, self.anchor_key(version, kind, worker))
            for kind in ("apkt", "adig", "ameta")
        ):
            return False
        return verify_chunk(
            self.host.get(node, self.anchor_key(version, "apkt", worker)),
            self.host.get(node, self.anchor_key(version, "adig", worker)),
        )

    def restore(self, failed_nodes: set[int]) -> RecoveryReport:
        tracer = obs.get_tracer()
        with tracer.span(
            f"{self.name}.restore", kind="restore", failed=sorted(failed_nodes)
        ) as span:
            report = self._restore_impl(failed_nodes)
            span.set(
                version=report.version,
                replayed=report.replayed_iterations,
            )
            span.add_sim(report.recovery_time)
            obs.record_phases(tracer, span, report.breakdown, kind="restore")
        return report

    def _restore_impl(self, failed_nodes: set[int]) -> RecoveryReport:
        self.on_failure(failed_nodes)
        self._stream_packets = {}
        latest = self.latest_version()
        tm = self.job.time_model
        live = [
            n
            for n in range(self.job.cluster.num_nodes)
            if n not in failed_nodes
        ]
        if not live:
            raise RecoveryError(f"{self.name}: every node failed")
        version = next(
            (
                v
                for v in range(latest, 0, -1)
                if self._anchor_recoverable(v, live)
            ),
            None,
        )
        if version is None:
            raise RecoveryError(
                f"{self.name}: no committed anchor survives failures "
                f"{sorted(failed_nodes)}"
            )
        anchor_iteration = int(
            self.host.get(live[0], ("anchor", version))["iteration"]
        )

        # Replay applies only to the tail based on this exact anchor.
        tail = (
            self.log.replayable_tail(version, live)
            if self.log.base_version == version
            else []
        )

        requests = []
        replay_requests = []
        bytes_inter_node = 0
        htod_times = [0.0]
        replay_bytes = 0
        final_payloads: dict[int, np.ndarray] = {}
        for worker in self.job.writers:
            home = self.log.home_of(worker)
            buddy = self.log.buddy_node(home)
            logical = self.job.logical_shard_bytes(worker)
            htod_times.append(tm.htod_time(logical))
            source = next(
                n
                for n in (home, buddy)
                if n in set(live) and self._anchor_verified(n, version, worker)
            )
            base_payload = self.host.get(
                source, self.anchor_key(version, "apkt", worker)
            )
            base_meta = self.host.get(
                source, self.anchor_key(version, "ameta", worker)
            )
            if source != home:
                # The anchor copy crosses back over the trunk.
                requests.append(
                    TransferRequest(src=source, dst=home, nbytes=logical)
                )
                bytes_inter_node += logical
                # Re-populate the wiped home so redundancy holds again.
                for kind in ("apkt", "adig", "ameta"):
                    value = self.host.get(
                        source, self.anchor_key(version, kind, worker)
                    )
                    if kind == "apkt":
                        value = value.copy()
                    self.host.put(
                        home, self.anchor_key(version, kind, worker), value
                    )
            payload, meta, buddy_fetches = self.log.replay_packet(
                base_payload, worker, tail, live
            )
            if buddy_fetches:
                for seq, record in tail:
                    share = int(record["worker_logical"].get(worker, 0))
                    if share and home in failed_nodes:
                        replay_requests.append(
                            TransferRequest(src=buddy, dst=home, nbytes=share)
                        )
                        bytes_inter_node += share
            replay_bytes += sum(
                int(r["worker_logical"].get(worker, 0)) for _, r in tail
            )
            final_payloads[worker] = payload
            self.job.state_dicts[worker] = restore_state_dict(
                meta if meta is not None else base_meta, payload
            )
        self._restore_dp_replicas()

        fetch = self.network.simulate(requests).makespan if requests else 0.0
        replay_fetch = (
            self.network.simulate(replay_requests).makespan
            if replay_requests
            else 0.0
        )
        replay_apply = tm.memcpy_time(replay_bytes) if replay_bytes else 0.0
        htod = max(htod_times)
        resume_iteration = (
            int(tail[-1][1]["iteration"]) if tail else anchor_iteration
        )

        # Background redundancy: prune the dead tail, re-replicate the
        # surviving one, re-broadcast commit/anchor records to wiped ranks.
        self.log.base_version = version
        self.log.base_iteration = anchor_iteration
        self.log.prune_to([seq for seq, _ in tail])
        self.log.restore_redundancy(set(failed_nodes))
        for node in failed_nodes:
            self.host.put(
                node, ("anchor", version), {"iteration": anchor_iteration}
            )
        # Wiped buddy/home anchor copies come back from the survivor.
        for worker in self.job.writers:
            home = self.log.home_of(worker)
            buddy = self.log.buddy_node(home)
            source = next(
                n
                for n in (home, buddy)
                if self._anchor_verified(n, version, worker)
            )
            for node in (home, buddy):
                if node != source and not self._anchor_verified(
                    node, version, worker
                ):
                    for kind in ("apkt", "adig", "ameta"):
                        value = self.host.get(
                            source, self.anchor_key(version, kind, worker)
                        )
                        if kind == "apkt":
                            value = value.copy()
                        self.host.put(
                            node,
                            self.anchor_key(version, kind, worker),
                            value,
                        )
        redo_bytes = sum(
            self.job.logical_shard_bytes(w)
            for w in self.job.writers
            if self.log.home_of(w) in failed_nodes
            or self.log.buddy_node(self.log.home_of(w)) in failed_nodes
        )
        redo_time = self._trunk_time(redo_bytes) if redo_bytes else 0.0
        self._stream_packets = {
            worker: payload.copy()
            for worker, payload in final_payloads.items()
        }
        return RecoveryReport(
            engine=self.name,
            version=version,
            recovery_time=fetch + replay_fetch + replay_apply + htod,
            breakdown={
                "fetch_packets": fetch,
                "replay_fetch": replay_fetch,
                "replay_apply": replay_apply,
                "htod": htod,
            },
            bytes_inter_node=bytes_inter_node,
            restore_redundancy_time=redo_time,
            replayed_iterations=len(tail),
            resume_iteration=resume_iteration,
        )

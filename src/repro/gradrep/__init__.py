"""Gradient-replication subsystem: the ``gradrep`` and ``hybrid`` engines.

The first engines whose recovery path is *temporal* (replay a replicated
per-iteration gradient log onto the last committed base state) rather
than spatial (reconstruct chunks from surviving redundancy).  See
DESIGN.md "Gradient replication & hybrid recovery".
"""

from repro.gradrep.engine import GradRepConfig, GradRepEngine
from repro.gradrep.gradlog import GradientLog, buddy_of
from repro.gradrep.hybrid import HybridEngine

__all__ = [
    "GradRepConfig",
    "GradRepEngine",
    "GradientLog",
    "HybridEngine",
    "buddy_of",
]

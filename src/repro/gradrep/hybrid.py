"""The ``hybrid`` engine: EC-coded base checkpoints + gradient tail.

ECCheck's erasure-coded snapshots amortise checkpoint cost but lose every
iteration since the last checkpoint on failure; ``gradrep`` loses almost
nothing but pays replication bandwidth every iteration.  The hybrid takes
both: periodic EC-coded checkpoints (the inner
:class:`~repro.core.eccheck.ECCheckEngine`, untouched) protect against
the expensive failure patterns, while a
:class:`~repro.gradrep.gradlog.GradientLog` tail protects the iterations
*between* checkpoints.  Recovery is the composition — newest-first EC
restore, then bounded replay of the committed tail:

``recovered state = EC_restore(newest base) ⊕ Δ₁ ⊕ ... ⊕ Δⱼ``

Replay applies only when the restored base is exactly the log's base
version (deltas XOR against that packetised state and no other); a
restore that lands on an older version or the remote tier drops the tail
and the next save re-bases the stream.
"""

from __future__ import annotations

import dataclasses

from repro import obs
from repro.checkpoint.base import RecoveryReport, SaveReport
from repro.checkpoint.job import TrainingJob
from repro.core.eccheck import ECCheckConfig, ECCheckEngine
from repro.core.protocol import restore_state_dict
from repro.gradrep.engine import GradRepConfig, GradRepEngine
from repro.gradrep.gradlog import GradientLog


class HybridEngine(GradRepEngine):
    """ECCheck base checkpoints with a gradient-replicated tail.

    Inherits the streaming side (``replicate_iteration``, piggyback
    pricing, the gradient log) from :class:`GradRepEngine`; the anchor
    save/restore paths are replaced wholesale by the inner EC engine.
    Both engines share one storage/network universe so a node wipe hits
    EC chunks and log entries alike.
    """

    name = "hybrid"

    crash_points = ECCheckEngine.crash_points + (
        "pre_grad_store",
        "mid_grad_replicate",
        "pre_grad_commit",
        "mid_grad_broadcast",
    )

    def __init__(
        self,
        job: TrainingJob,
        config: ECCheckConfig | None = None,
        gradrep_config: GradRepConfig | None = None,
    ):
        # The inner engine must exist before the base constructor runs:
        # assigning ``crash_injector = None`` there goes through the
        # property below, which mirrors onto the inner engine.
        self.inner = ECCheckEngine(job, config)
        super().__init__(job, gradrep_config)
        self.host = self.inner.host
        self.disk = self.inner.disk
        self.remote = self.inner.remote
        self.network = self.inner.network
        self.log = GradientLog(self.host, job, fire=self._fire)

    # ------------------------------------------------------------------
    @property
    def crash_injector(self):
        return self._crash_injector

    @crash_injector.setter
    def crash_injector(self, value):
        self._crash_injector = value
        self.inner.crash_injector = value

    def prune_memory_index(self) -> list[int]:
        return self.inner.prune_memory_index()

    def save_remote_backup(self):
        report = self.inner.save_remote_backup()
        self.version = self.inner.version
        return report

    # ------------------------------------------------------------------
    def save(self) -> SaveReport:
        """EC-coded base checkpoint; commits re-base the gradient stream.

        The inner save's spans/phases land under its own name — the
        hybrid only re-brands the report.  On an injected crash the log
        keeps its old base: the torn version was never committed, so the
        tail is still replayable onto the previous one.
        """
        try:
            report = self.inner.save()
        finally:
            self.version = self.inner.version
        self._commit_base(report.version)
        return dataclasses.replace(report, engine=self.name)

    def _commit_base(self, version: int) -> None:
        self.log.rebase(version, self.job.iteration)
        self._stream_packets = {
            worker: ckpt.packet.payload.copy()
            for worker, ckpt in self._build_packets().items()
        }

    # ------------------------------------------------------------------
    def restore(self, failed_nodes: set[int]) -> RecoveryReport:
        """Newest-first EC restore, then bounded replay of the tail."""
        inner_report = self.inner.restore(failed_nodes)
        self.version = self.inner.version
        tracer = obs.get_tracer()
        with tracer.span(
            f"{self.name}.replay",
            kind="restore",
            version=inner_report.version,
            failed=sorted(failed_nodes),
        ) as span:
            report = self._replay_after_restore(inner_report, failed_nodes)
            span.set(replayed=report.replayed_iterations)
            replay_keys = ("replay_fetch", "replay_apply", "replay_htod")
            replay_breakdown = {
                k: v for k, v in report.breakdown.items() if k in replay_keys
            }
            span.add_sim(sum(replay_breakdown.values()))
            obs.record_phases(tracer, span, replay_breakdown, kind="restore")
        return report

    def _replay_after_restore(
        self, inner_report: RecoveryReport, failed_nodes: set[int]
    ) -> RecoveryReport:
        tm = self.job.time_model
        live = [
            n
            for n in range(self.job.cluster.num_nodes)
            if n not in failed_nodes
        ]
        version = inner_report.version
        if self.log.base_version != version:
            # The restored base predates (or postdates via remote
            # weirdness) the stream's base — the tail XORs against state
            # this restore did not produce, so it must be dropped; the
            # next save re-bases.
            self.log.rebase(None, None)
            self._stream_packets = {}
            return dataclasses.replace(
                self.inner_report_rebranded(inner_report),
                replayed_iterations=0,
                resume_iteration=None,
            )

        tail = self.log.replayable_tail(version, live)
        base_packets = self._build_packets()  # restored state == base state
        fetch_bytes = 0
        replay_bytes = 0
        final_payloads = {}
        for worker in self.job.writers:
            home = self.log.home_of(worker)
            base = base_packets[worker]
            payload, meta, buddy_fetches = self.log.replay_packet(
                base.packet.payload, worker, tail, live
            )
            worker_replay = sum(
                int(r["worker_logical"].get(worker, 0)) for _, r in tail
            )
            replay_bytes += worker_replay
            if buddy_fetches and home in failed_nodes:
                fetch_bytes += worker_replay
            final_payloads[worker] = payload
            if tail:
                self.job.state_dicts[worker] = restore_state_dict(
                    meta if meta is not None else base.metadata_blob, payload
                )
        if tail:
            self._restore_dp_replicas()
        replay_fetch = self._trunk_time(fetch_bytes) if fetch_bytes else 0.0
        replay_apply = tm.memcpy_time(replay_bytes) if replay_bytes else 0.0
        replay_htod = (
            max(
                tm.htod_time(
                    sum(int(r["worker_logical"].get(w, 0)) for _, r in tail)
                )
                for w in self.job.writers
            )
            if tail
            else 0.0
        )

        # Tail hygiene: drop the dead suffix, re-replicate the surviving
        # prefix onto the wiped ranks so the next failure is survivable.
        self.log.prune_to([seq for seq, _ in tail])
        self.log.restore_redundancy(set(failed_nodes))
        self._stream_packets = {
            worker: payload.copy()
            for worker, payload in final_payloads.items()
        }
        resume = (
            int(tail[-1][1]["iteration"]) if tail else self.log.base_iteration
        )
        breakdown = dict(inner_report.breakdown)
        breakdown.update(
            {
                "replay_fetch": replay_fetch,
                "replay_apply": replay_apply,
                "replay_htod": replay_htod,
            }
        )
        return dataclasses.replace(
            self.inner_report_rebranded(inner_report),
            recovery_time=inner_report.recovery_time
            + replay_fetch
            + replay_apply
            + replay_htod,
            breakdown=breakdown,
            bytes_inter_node=inner_report.bytes_inter_node + fetch_bytes,
            replayed_iterations=len(tail),
            resume_iteration=resume,
        )

    def inner_report_rebranded(
        self, inner_report: RecoveryReport
    ) -> RecoveryReport:
        return dataclasses.replace(inner_report, engine=self.name)

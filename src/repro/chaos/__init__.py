"""Chaos engineering for the checkpoint engines.

Fault-injection campaigns that drive randomized end-to-end
save -> crash -> restore -> resume cycles against every engine and assert
recovery invariants after each round: restored ``state_dict``s bit-identical
to the checkpointed ones, torn versions rolled back (never restored), full
redundancy re-established, and lost-work accounting consistent.

* :mod:`repro.chaos.injection` — crash points and the injector engines
  consult mid-save, leaving genuine torn versions behind.
* :mod:`repro.chaos.invariants` — recoverability oracles and post-recovery
  checks, implemented independently of the engines' own recovery logic so
  a bug in one side is caught by the other.
* :mod:`repro.chaos.campaign` — the seeded episode driver and its JSON
  campaign report (the ``repro chaos`` CLI command).
"""

from repro.chaos.campaign import (
    ChaosConfig,
    CampaignReport,
    EpisodeResult,
    run_campaign,
    run_episode,
)
from repro.chaos.injection import (
    CrashInjector,
    CrashPlan,
    InjectedCrash,
)

__all__ = [
    "CampaignReport",
    "ChaosConfig",
    "CrashInjector",
    "CrashPlan",
    "EpisodeResult",
    "InjectedCrash",
    "run_campaign",
    "run_episode",
]

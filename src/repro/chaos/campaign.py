"""Seeded chaos campaigns: randomized save/crash/restore/resume episodes.

One *episode* builds a fresh testbed job (4 nodes x 2 GPUs, TP=2 / PP=4)
plus one engine and runs a few rounds of:

1. train and checkpoint through a :class:`CheckpointManager`, recording a
   deep snapshot of the exact bytes each committed version captured;
2. optionally arm a :class:`~repro.chaos.injection.CrashInjector` on one
   of the engine's crash points and let a save abort mid-flight, leaving
   a genuine torn version;
3. optionally corrupt a stored chunk packet in place (silent bit rot);
4. sample node failures (independent / rack-correlated / Poisson-trace /
   targeted — or a pure crash-restart with no machine loss);
5. consult the independent :mod:`~repro.chaos.invariants` oracle for what
   a correct engine must do, then run ``manager.on_failure`` and check
   every invariant: restored ``state_dict``s bit-identical, torn versions
   never restored, redundancy re-established, lost-work accounting exact.

Every random draw flows from ``default_rng([seed, episode])``, so a
campaign is reproducible draw-for-draw and a fixed seed can gate CI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.errors import CheckpointError, RecoveryError
from repro.chaos.injection import CrashInjector, CrashPlan, InjectedCrash
from repro.chaos.invariants import (
    check_redundancy,
    check_restored_states,
    expected_outcome,
)
from repro.checkpoint.job import TrainingJob
from repro.checkpoint.manager import CheckpointManager
from repro.core.eccheck import ECCheckConfig
from repro.core.registry import build_engine
from repro.core.registry import engine_names as registry_engine_names
from repro.core.integrity import corrupt_buffer
from repro.obs.timeseries import TimeSeriesSampler
from repro.parallel.strategy import ParallelismSpec
from repro.parallel.topology import ClusterSpec
from repro.sim.failures import (
    concurrent_failure_counts,
    poisson_failure_trace,
    sample_correlated_failures,
    sample_node_failures,
)

ENGINES = ("eccheck", "base1", "base2", "base3")

#: Probability knobs of one round (module-level so tests can reason about
#: coverage; the rng stream, not these values, carries the determinism).
P_CRASH = 0.6
P_CORRUPT = 0.3
FAILURE_MODES = ("none", "independent", "correlated", "poisson", "targeted")
FAILURE_MODE_WEIGHTS = (0.15, 0.25, 0.15, 0.20, 0.25)


@dataclass(frozen=True)
class ChaosConfig:
    """Campaign parameters (defaults = the CI smoke shape)."""

    episodes: int = 50
    seed: int = 0
    engines: tuple[str, ...] = ENGINES
    max_rounds: int = 3
    model: str = "gpt2-h1024-L16"
    scale: float = 5e-4
    #: Run each episode under a collecting tracer and attach a trace
    #: summary (span/event counts, phase totals, fired crash points) to
    #: the episode in ``CHAOS_report.json``.
    trace: bool = False
    #: Attach a per-episode telemetry timeline sampled against a clock
    #: derived from the save/recovery report durations.  Deliberately
    #: excluded from the serialized config section so a ``timeline`` run
    #: and a plain run differ only in the ``timeline`` sections.
    timeline: bool = False
    timeline_period_s: float = 60.0


@dataclass
class EpisodeResult:
    """One episode's recovery cycles and any invariant violations."""

    episode: int
    engine: str
    cycles: list[dict] = field(default_factory=list)
    violations: list[str] = field(default_factory=list)
    #: Present only when the campaign ran with ``ChaosConfig.trace``.
    trace_summary: dict | None = None
    #: Present only when the campaign ran with ``ChaosConfig.timeline``.
    timeline: dict | None = None


@dataclass
class CampaignReport:
    """All episode results plus the crash x failure x corruption matrix."""

    config: ChaosConfig
    episodes: list[EpisodeResult]

    @property
    def violations(self) -> list[str]:
        return [
            f"episode {e.episode} ({e.engine}): {v}"
            for e in self.episodes
            for v in e.violations
        ]

    @property
    def cycles(self) -> list[dict]:
        return [c for e in self.episodes for c in e.cycles]

    def outcome_matrix(self) -> dict[str, dict[str, int]]:
        """``"crash_point/failures/corruption" -> {outcome: count}``."""
        matrix: dict[str, dict[str, int]] = {}
        for cycle in self.cycles:
            key = (
                f"{cycle['crash_point'] or '-'}"
                f"/f{cycle['num_failed']}"
                f"/{'corrupt' if cycle['corrupted'] else 'clean'}"
            )
            row = matrix.setdefault(key, {})
            row[cycle["outcome"]] = row.get(cycle["outcome"], 0) + 1
        return {key: matrix[key] for key in sorted(matrix)}

    def to_dict(self) -> dict:
        """Plain-data form of the report.

        Deliberately provenance-free so identical campaigns compare equal
        (determinism tests rely on it); :meth:`to_json` adds the stamp.
        """
        return {
            "config": {
                "episodes": self.config.episodes,
                "seed": self.config.seed,
                "engines": list(self.config.engines),
                "max_rounds": self.config.max_rounds,
                "model": self.config.model,
                "scale": self.config.scale,
                "trace": self.config.trace,
            },
            "total_recovery_cycles": len(self.cycles),
            "outcome_matrix": self.outcome_matrix(),
            "violations": self.violations,
            "episodes": [
                {
                    "episode": e.episode,
                    "engine": e.engine,
                    "cycles": e.cycles,
                    "violations": e.violations,
                    **(
                        {"trace_summary": e.trace_summary}
                        if e.trace_summary is not None
                        else {}
                    ),
                    **(
                        {"timeline": e.timeline}
                        if e.timeline is not None
                        else {}
                    ),
                }
                for e in self.episodes
            ],
        }

    def to_json(self, provenance: bool = True) -> str:
        """JSON form for ``CHAOS_report.json``, provenance-stamped.

        ``provenance=False`` omits the stamp (git SHA, timestamp,
        hostname) for byte-stable comparisons.
        """
        payload = self.to_dict()
        if provenance:
            from repro.obs.provenance import provenance_stamp

            payload["provenance"] = provenance_stamp()
        return json.dumps(payload, indent=2, sort_keys=True)

    def render(self) -> str:
        """ASCII summary: the outcome matrix plus the violation count."""
        lines = [
            f"chaos campaign: {len(self.episodes)} episodes, "
            f"{len(self.cycles)} recovery cycles, "
            f"{len(self.violations)} violations",
            f"{'crash point / failures / corruption':<42s} "
            f"{'memory':>7s} {'disk':>5s} {'backup':>7s} "
            f"{'refused':>8s} {'error':>6s}",
        ]
        for key, row in self.outcome_matrix().items():
            lines.append(
                f"{key:<42s} {row.get('memory', 0):>7d} "
                f"{row.get('disk', 0):>5d} "
                f"{row.get('backup', 0):>7d} {row.get('refused', 0):>8d} "
                f"{row.get('engine_error', 0):>6d}"
            )
        for violation in self.violations:
            lines.append(f"VIOLATION: {violation}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
def _build_engine(engine_name: str, config: ChaosConfig, job_seed: int):
    job = TrainingJob.create(
        model=config.model,
        cluster=ClusterSpec(num_nodes=4, gpus_per_node=2, nodes_per_rack=2),
        strategy=ParallelismSpec(tensor_parallel=2, pipeline_parallel=4),
        scale=config.scale,
        seed=job_seed,
    )
    try:
        engine = build_engine(
            engine_name,
            job,
            ECCheckConfig(k=2, m=2, encode_threads=2, engine=engine_name),
            group_size=2,
        )
    except CheckpointError as exc:
        raise ValueError(
            f"unknown engine {engine_name!r}; choose from "
            f"{', '.join(registry_engine_names())}"
        ) from exc
    if hasattr(engine, "replicate_iteration") and engine_name not in ENGINES:
        # The generic campaign's torn-version accounting assumes crashes
        # happen inside *saves*; streaming engines also crash inside
        # replicate calls, which the replay-aware hybrid campaign models.
        raise ValueError(
            f"engine {engine_name!r} streams per-iteration updates — "
            f"run it through the hybrid campaign (`repro hybrid`) instead"
        )
    return job, engine


def _sample_failures(mode: str, job, rng: np.random.Generator) -> set[int]:
    n = job.cluster.num_nodes
    if mode == "none":
        return set()
    if mode == "independent":
        return sample_node_failures(n, 0.3, rng)
    if mode == "correlated":
        return sample_correlated_failures(job.cluster, 0.2, 0.15, rng)
    if mode == "poisson":
        # A day-long fleet trace; one window's concurrent-failure count
        # becomes this round's simultaneous loss.
        trace = poisson_failure_trace(
            n, mtbf_hours=float(rng.uniform(20.0, 120.0)),
            duration_hours=24.0, rng=rng,
        )
        counts = concurrent_failure_counts(trace, 1.0, duration_hours=24.0)
        count = min(n, counts[int(rng.integers(len(counts)))])
        return {int(x) for x in rng.choice(n, size=count, replace=False)}
    if mode == "targeted":
        size = int(rng.integers(1, n))
        return {int(x) for x in rng.choice(n, size=size, replace=False)}
    raise ValueError(f"unknown failure mode {mode!r}")


def _corrupt_random_chunk(engine, rng: np.random.Generator) -> str | None:
    """Flip bits in one stored chunk packet; returns a description."""
    candidates = []
    for node in range(engine.job.cluster.num_nodes):
        for key in engine.host.keys(node):
            if isinstance(key, tuple) and key[0] == "chunk":
                candidates.append((node, key))
    if not candidates:
        return None
    candidates.sort(key=repr)
    node, key = candidates[int(rng.integers(len(candidates)))]
    payload = engine.host.get(node, key)
    corrupt_buffer(
        payload,
        byte_index=int(rng.integers(payload.size)),
        mask=int(rng.integers(1, 256)),
    )
    return f"node {node} {key}"


# ----------------------------------------------------------------------
def run_episode(
    engine_name: str,
    episode: int,
    config: ChaosConfig,
) -> EpisodeResult:
    """One seeded save/crash/restore/resume episode against one engine.

    With ``config.trace`` the whole episode runs under a collecting
    tracer (the rng stream is untouched, so traced and untraced runs
    make identical draws) and the result carries a trace summary.
    """
    sampler = None
    if config.timeline:
        sampler = TimeSeriesSampler(period_s=config.timeline_period_s)
    if not config.trace:
        result = _run_episode_impl(engine_name, episode, config, sampler)
    else:
        with obs.use_tracer() as tracer:
            result = _run_episode_impl(engine_name, episode, config, sampler)
        result.trace_summary = obs.summarize(tracer)
    if sampler is not None:
        result.timeline = sampler.timeline_dict()
    return result


def _run_episode_impl(
    engine_name: str,
    episode: int,
    config: ChaosConfig,
    sampler: TimeSeriesSampler | None = None,
) -> EpisodeResult:
    rng = np.random.default_rng([config.seed, episode])
    result = EpisodeResult(episode=episode, engine=engine_name)
    job, engine = _build_engine(
        engine_name, config, job_seed=config.seed * 7919 + episode
    )
    backup_every = (
        int(rng.choice([0, 2])) if engine_name == "eccheck" else 0
    )
    manager = CheckpointManager(
        job, engine, interval=1, remote_backup_every=backup_every
    )

    version_states: dict[int, dict] = {}
    version_iteration: dict[int, int] = {}
    torn_versions: set[int] = set()
    drained_saves = 0
    drained_backups = 0
    t = 0.0
    if sampler is not None:
        # No event loop here: the timeline's clock is *derived* — the
        # cumulative save/recovery durations the engine itself reports.
        sampler.register_probe(
            "checkpoints", lambda _t: float(manager.stats.checkpoints)
        )
        sampler.register_probe(
            "recoveries", lambda _t: float(manager.stats.recoveries)
        )
        sampler.register_probe(
            "iterations_lost",
            lambda _t: float(manager.stats.iterations_lost),
        )
        sampler.register_probe(
            "torn_versions", lambda _t: float(len(torn_versions))
        )
        sampler.sample(0.0, "baseline")

    def drain_reports() -> None:
        nonlocal drained_saves, drained_backups, t
        fresh = (
            manager.stats.save_reports[drained_saves:]
            + manager.stats.backup_reports[drained_backups:]
        )
        drained_saves = len(manager.stats.save_reports)
        drained_backups = len(manager.stats.backup_reports)
        for report in fresh:
            t += float(getattr(report, "checkpoint_time", 0.0))
            # The snapshot is taken right after the committing step, before
            # training advances, so it equals the bytes the save captured.
            version_states.setdefault(report.version, job.snapshot_states())
            version_iteration.setdefault(
                report.version,
                manager._checkpoint_iteration_of_version[report.version],
            )
        if sampler is not None and fresh:
            sampler.advance(t)

    rounds = int(rng.integers(1, config.max_rounds + 1))
    for _ in range(rounds):
        # -- train + checkpoint -----------------------------------------
        for _ in range(int(rng.integers(1, 4))):
            job.advance()
            manager.step()
            drain_reports()

        # -- maybe crash a save mid-flight ------------------------------
        crash_point = None
        if engine.crash_points and rng.random() < P_CRASH:
            point = str(rng.choice(engine.crash_points))
            plan = CrashPlan(point=point, after=int(rng.integers(0, 3)))
            job.advance()
            engine.crash_injector = CrashInjector(plan)
            try:
                manager.step()
            except InjectedCrash:
                crash_point = point
                torn_versions.add(engine.version)
                if sampler is not None:
                    sampler.note_event(t, "save_crash", point=point)
            finally:
                injector, engine.crash_injector = engine.crash_injector, None
            if crash_point is None:
                # The planned hit count exceeded the point's actual hits
                # (e.g. ``after=2`` on a once-per-save point): the save
                # completed normally.
                assert not injector.fired
                drain_reports()

        # -- maybe rot a stored chunk -----------------------------------
        corrupted = None
        if engine_name == "eccheck" and rng.random() < P_CORRUPT:
            corrupted = _corrupt_random_chunk(engine, rng)
            if sampler is not None and corrupted is not None:
                sampler.note_event(t, "corruption", where=corrupted)

        # -- sample a failure -------------------------------------------
        mode = str(
            rng.choice(FAILURE_MODES, p=FAILURE_MODE_WEIGHTS)
        )
        failed = _sample_failures(mode, job, rng)
        failed = {n for n in failed if n < job.cluster.num_nodes}
        if not failed and crash_point is None and corrupted is None:
            continue  # nothing happened this round
        # A crash with no machine loss is a pure process restart; recovery
        # still runs (GPU state must be reloaded and torn versions walked
        # back).  Corruption without crash/failure also forces a restart so
        # the rot is exercised rather than silently overwritten.

        # -- oracle, then recover ---------------------------------------
        expected_kind, expected_version = expected_outcome(engine, failed)
        at_iteration = job.iteration
        lost_before = manager.stats.iterations_lost
        cycle = {
            "crash_point": crash_point,
            "failure_mode": mode,
            "num_failed": len(failed),
            "corrupted": corrupted is not None,
            "expected": expected_kind,
        }
        if sampler is not None:
            sampler.note_event(
                t, "failure", mode=mode, ranks=sorted(failed)
            )
        try:
            report = manager.on_failure(failed)
        except RecoveryError as exc:
            cycle["outcome"] = "refused"
            result.cycles.append(cycle)
            if expected_kind != "refused":
                result.violations.append(
                    f"refused recovery although v{expected_version} was "
                    f"recoverable from {expected_kind} "
                    f"(failed={sorted(failed)}, crash={crash_point}): {exc}"
                )
            break  # the job is down; the episode ends here
        except Exception as exc:  # noqa: BLE001 — any leak is a finding
            cycle["outcome"] = "engine_error"
            result.cycles.append(cycle)
            result.violations.append(
                f"recovery raised {type(exc).__name__} instead of "
                f"recovering or refusing cleanly "
                f"(failed={sorted(failed)}, crash={crash_point}): {exc}"
            )
            break

        tier = getattr(report, "tier", "memory")
        outcome = "backup" if tier == "remote" else tier
        cycle["outcome"] = outcome
        cycle["version"] = report.version
        result.cycles.append(cycle)
        if sampler is not None:
            t += float(report.recovery_time)
            sampler.advance(t)

        if expected_kind == "refused":
            result.violations.append(
                f"engine restored v{report.version} although the oracle "
                f"found no recoverable version (failed={sorted(failed)})"
            )
            break
        if outcome != expected_kind or report.version != expected_version:
            result.violations.append(
                f"restored v{report.version} from {outcome}, expected "
                f"v{expected_version} from {expected_kind} "
                f"(failed={sorted(failed)}, crash={crash_point})"
            )
        if report.version in torn_versions:
            result.violations.append(
                f"restored torn version v{report.version} "
                f"(crash={crash_point}, failed={sorted(failed)})"
            )
        if report.version not in version_states:
            result.violations.append(
                f"restored v{report.version}, a version no completed save "
                f"ever committed"
            )
        else:
            result.violations.extend(
                check_restored_states(job, version_states[report.version])
            )
            result.violations.extend(
                check_redundancy(
                    engine, report.version, from_backup=outcome == "backup"
                )
            )
            expected_lost = max(
                0, at_iteration - version_iteration[report.version]
            )
            actual_lost = manager.stats.iterations_lost - lost_before
            if actual_lost != expected_lost:
                result.violations.append(
                    f"iterations_lost accounted {actual_lost}, expected "
                    f"{expected_lost} (at={at_iteration}, "
                    f"restored v{report.version} @ "
                    f"{version_iteration[report.version]})"
                )
            if job.iteration != version_iteration[report.version]:
                result.violations.append(
                    f"job resumed at iteration {job.iteration}, expected "
                    f"{version_iteration[report.version]}"
                )
    if sampler is not None:
        sampler.finalize(t)
    return result


def run_campaign(config: ChaosConfig | None = None) -> CampaignReport:
    """Run ``config.episodes`` episodes, engines round-robin."""
    config = config or ChaosConfig()
    episodes = []
    for episode in range(config.episodes):
        engine_name = config.engines[episode % len(config.engines)]
        episodes.append(run_episode(engine_name, episode, config))
    return CampaignReport(config=config, episodes=episodes)

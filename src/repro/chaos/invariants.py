"""Recoverability oracles and post-recovery invariant checks.

Everything here re-derives, from raw storage contents only, what a
correct engine *must* do — deliberately without calling the engines'
own recovery helpers.  A campaign consults the oracle before asking the
engine to restore; disagreement in either direction is a finding:

* the engine refuses although the oracle proves a recoverable version
  exists (lost availability), or
* the engine "recovers" a version the oracle knows is torn or stale
  (lost correctness — the failure mode the torn-version walk-back fixes).

The oracle must run *before* ``restore`` is invoked: restoring wipes the
failed nodes' host stores, and the oracle reads the same survivor state
the engine will see.
"""

from __future__ import annotations

from repro.core.integrity import verify_chunk
from repro.tensors.state_dict import state_dicts_equal


# ----------------------------------------------------------------------
# Pre-restore oracles: which version *should* a correct engine restore?
# ----------------------------------------------------------------------
def _store_chunk_whole(
    store, engine, node: int, version: int, kind: str, idx: int, groups: int
) -> bool:
    """Every reduction-group packet of a chunk present in ``store`` on
    ``node`` and passing its CRC."""
    for r in range(groups):
        key = engine.chunk_key(version, kind, idx, r)
        digest_key = engine.digest_key(version, kind, idx, r)
        if not (store.contains(node, key) and store.contains(node, digest_key)):
            return False
        if not verify_chunk(store.get(node, key), store.get(node, digest_key)):
            return False
    return True


def _eccheck_memory_qualifies(
    engine, version: int, survivors: list[int]
) -> bool:
    """>= k chunks whole on survivors, metadata reachable — the commit
    rule, judged against the placement *this* version was written under
    (elastic regroups mean adjacent versions can differ)."""
    plan = engine.placement_of(version)
    groups = len(plan.data_group[0])
    whole = 0
    for j, node in enumerate(plan.data_nodes):
        if node in survivors and _store_chunk_whole(
            engine.host, engine, node, version, "data", j, groups
        ):
            whole += 1
    for i, node in enumerate(plan.parity_nodes):
        if node in survivors and _store_chunk_whole(
            engine.host, engine, node, version, "parity", i, groups
        ):
            whole += 1
    if whole < plan.k:
        return False
    return all(
        any(
            engine.host.contains(node, ("meta", version, worker))
            for node in survivors
        )
        for worker in range(engine.job.world_size)
    )


def _eccheck_disk_qualifies(engine, version: int) -> bool:
    """Whole version restorable from the local-disk tier: every chunk of
    the version's plan verifies on its node's disk and every worker's
    metadata survives on some disk.  Disks survive node failures, so
    ``failed_nodes`` plays no role here."""
    plan = engine.placement_of(version)
    groups = len(plan.data_group[0])
    for j, node in enumerate(plan.data_nodes):
        if not _store_chunk_whole(
            engine.disk, engine, node, version, "data", j, groups
        ):
            return False
    for i, node in enumerate(plan.parity_nodes):
        if not _store_chunk_whole(
            engine.disk, engine, node, version, "parity", i, groups
        ):
            return False
    all_nodes = range(engine.job.cluster.num_nodes)
    return all(
        any(
            engine.disk.contains(node, ("meta", version, worker))
            for node in all_nodes
        )
        for worker in range(engine.job.world_size)
    )


def eccheck_memory_version(engine, failed_nodes: set[int]) -> int | None:
    """Newest in-memory version a correct ECCheck restore must accept.

    A version qualifies when >= k chunks are whole on surviving nodes
    (every reduction-group packet present and passing its CRC) and every
    worker's metadata record is reachable on some survivor — the commit
    rule.  Returns ``None`` when only the disk tier, the remote backup
    (or nothing) can help.
    """
    survivors = [
        n for n in range(engine.job.cluster.num_nodes) if n not in failed_nodes
    ]
    if not survivors:
        return None
    for version in range(engine.version, 0, -1):
        if _eccheck_memory_qualifies(engine, version, survivors):
            return version
    return None


def eccheck_disk_version(engine) -> int | None:
    """Newest version fully restorable from the local-disk tier."""
    for version in range(engine.version, 0, -1):
        if _eccheck_disk_qualifies(engine, version):
            return version
    return None


def eccheck_tier_version(
    engine, failed_nodes: set[int]
) -> tuple[str, int] | None:
    """(tier, version) of the newest version restorable from memory or
    disk — the combined newest-first walk a correct tiered restore does.
    Memory is preferred at equal version (no promotion cost)."""
    survivors = [
        n for n in range(engine.job.cluster.num_nodes) if n not in failed_nodes
    ]
    for version in range(engine.version, 0, -1):
        if survivors and _eccheck_memory_qualifies(engine, version, survivors):
            return "memory", version
        if _eccheck_disk_qualifies(engine, version):
            return "disk", version
    return None


def remote_complete_version(engine) -> int | None:
    """Newest remote version holding every writer's blob (None if none)."""
    for version in range(engine.version, 0, -1):
        if all(
            engine.remote.contains(("ckpt", version, worker))
            for worker in engine.job.writers
        ):
            return version
    return None


def replication_memory_version(engine, failed_nodes: set[int]) -> int | None:
    """Newest version a correct base3 restore must accept.

    Requires a survivor in every replication group and the version fully
    replicated across all survivors (full replication is base3's commit
    record — a torn broadcast leaves some survivor without a peer's key).
    """
    groups = engine.groups()
    if any(all(n in failed_nodes for n in g) for g in groups):
        return None
    writers = set(engine.job.writers)
    for version in range(engine.version, 0, -1):
        ok = True
        for group in groups:
            group_writers = [
                w
                for n in group
                for w in engine.job.cluster.workers_of(n)
                if w in writers
            ]
            for peer in group:
                if peer in failed_nodes:
                    continue
                if not all(
                    engine.host.contains(peer, ("ckpt", version, w))
                    for w in group_writers
                ):
                    ok = False
                    break
            if not ok:
                break
        if ok:
            return version
    return None


# ----------------------------------------------------------------------
# Gradient-stream oracles (gradrep / hybrid).  These re-derive the log's
# replay commit rule from raw host keys — deliberately without calling
# GradientLog's own query methods, so the hybrid campaign is a real
# differential test of the engine against an independent reading of the
# same bytes.
# ----------------------------------------------------------------------
def _grad_buddy(job, node: int) -> int:
    from repro.gradrep.gradlog import buddy_of  # placement rule, not recovery

    cluster = job.cluster
    return buddy_of(
        node, cluster.num_nodes, getattr(cluster, "nodes_per_rack", None)
    )


def grad_stream_seqs(engine, survivors: list[int]) -> list[int]:
    """Every log seq with any trace in survivor storage, ascending."""
    seqs = set()
    for node in survivors:
        for key in engine.host.keys(node):
            if isinstance(key, tuple) and key[0] in (
                "grad",
                "graddig",
                "gradmeta",
                "gradcommit",
            ):
                seqs.add(key[1])
    return sorted(seqs)


def _grad_entry_committed(engine, seq: int, survivors: list[int]) -> dict | None:
    """The entry's commit record iff identical on *every* survivor."""
    record = None
    for node in survivors:
        if not engine.host.contains(node, ("gradcommit", seq)):
            return None
        found = engine.host.get(node, ("gradcommit", seq))
        if record is None:
            record = found
        elif found != record:
            return None
    return record


def _grad_entry_intact(engine, seq: int, survivors: list[int]) -> bool:
    """Every writer's delta verified on a surviving home-or-buddy node."""
    live = set(survivors)
    for worker in engine.job.writers:
        home = engine.job.node_of(worker)
        ok = False
        for node in (home, _grad_buddy(engine.job, home)):
            if node not in live:
                continue
            if not (
                engine.host.contains(node, ("grad", seq, worker))
                and engine.host.contains(node, ("graddig", seq, worker))
                and engine.host.contains(node, ("gradmeta", seq, worker))
            ):
                continue
            if verify_chunk(
                engine.host.get(node, ("grad", seq, worker)),
                engine.host.get(node, ("graddig", seq, worker)),
            ):
                ok = True
                break
        if not ok:
            return False
    return True


def expected_replay_tail(
    engine, base_version: int, survivors: list[int]
) -> list[dict]:
    """Commit records a correct replay must apply, in order.

    The walk ascends seqs found in raw storage and stops at the first
    entry that is torn (commit record missing or unequal on some
    survivor), bit-rotted (no verified surviving copy of some writer's
    delta) or based on a different version — everything after a gap
    XORs against the wrong predecessor state.
    """
    tail: list[dict] = []
    for seq in grad_stream_seqs(engine, survivors):
        record = _grad_entry_committed(engine, seq, survivors)
        if record is None or record["base_version"] != base_version:
            break
        if not _grad_entry_intact(engine, seq, survivors):
            break
        tail.append(record)
    return tail


def _gradrep_anchor_qualifies(
    engine, version: int, survivors: list[int]
) -> bool:
    live = set(survivors)
    for node in survivors:
        if not engine.host.contains(node, ("anchor", version)):
            return False
    for worker in engine.job.writers:
        home = engine.job.node_of(worker)
        ok = False
        for node in (home, _grad_buddy(engine.job, home)):
            if node not in live:
                continue
            if not all(
                engine.host.contains(node, (kind, version, worker))
                for kind in ("apkt", "adig", "ameta")
            ):
                continue
            if verify_chunk(
                engine.host.get(node, ("apkt", version, worker)),
                engine.host.get(node, ("adig", version, worker)),
            ):
                ok = True
                break
        if not ok:
            return False
    return True


def gradrep_anchor_version(engine, failed_nodes: set[int]) -> int | None:
    """Newest anchor a correct gradrep restore must accept.

    The anchor commit rule mirrors the log's: the ``("anchor", v)``
    record on every survivor, and every writer's full packet verified on
    a surviving home-or-buddy node.
    """
    survivors = [
        n for n in range(engine.job.cluster.num_nodes) if n not in failed_nodes
    ]
    if not survivors:
        return None
    for version in range(engine.version, 0, -1):
        if _gradrep_anchor_qualifies(engine, version, survivors):
            return version
    return None


def expected_recovery(engine, failed_nodes: set[int]) -> dict:
    """Full recovery prediction: outcome, version, replay depth, resume.

    Extends :func:`expected_outcome` with the temporal leg: how many log
    entries a correct engine must replay on top of the restored base and
    which absolute iteration the recovered state must correspond to
    (``resume_iteration=None`` when the engine has no replay notion or
    no committed tail survives — the manager's checkpoint ledger then
    rules).
    """
    survivors = [
        n for n in range(engine.job.cluster.num_nodes) if n not in failed_nodes
    ]
    name = engine.name
    if name == "gradrep":
        version = gradrep_anchor_version(engine, failed_nodes)
        if version is None:
            return {
                "outcome": "refused",
                "version": None,
                "replayed": 0,
                "resume_iteration": None,
            }
        anchor_iteration = int(
            engine.host.get(survivors[0], ("anchor", version))["iteration"]
        )
        tail = expected_replay_tail(engine, version, survivors)
        resume = int(tail[-1]["iteration"]) if tail else anchor_iteration
        return {
            "outcome": "memory",
            "version": version,
            "replayed": len(tail),
            "resume_iteration": resume,
        }
    if name == "hybrid":
        outcome, version = expected_outcome(engine.inner, failed_nodes)
        if outcome == "refused":
            return {
                "outcome": "refused",
                "version": None,
                "replayed": 0,
                "resume_iteration": None,
            }
        tail = expected_replay_tail(engine, version, survivors)
        return {
            "outcome": outcome,
            "version": version,
            "replayed": len(tail),
            "resume_iteration": int(tail[-1]["iteration"]) if tail else None,
        }
    outcome, version = expected_outcome(engine, failed_nodes)
    return {
        "outcome": outcome,
        "version": version,
        "replayed": 0,
        "resume_iteration": None,
    }


def expected_outcome(engine, failed_nodes: set[int]) -> tuple[str, int | None]:
    """(outcome, version) a correct engine must produce for this failure.

    Outcome is ``"memory"``, ``"disk"``, ``"backup"`` or ``"refused"``;
    the version is the exact checkpoint version the restore must land on
    (None when refusing is correct).  The tier hierarchy walks newest
    version first across memory and disk (a version lost from memory but
    demoted to disk recovers from disk), with the remote backup as the
    catastrophic fallback.
    """
    name = engine.name
    if name == "eccheck":
        tiered = eccheck_tier_version(engine, failed_nodes)
        if tiered is not None:
            return tiered
        backup = remote_complete_version(engine)
        if backup is not None:
            return "backup", backup
        return "refused", None
    if name == "base3":
        version = replication_memory_version(engine, failed_nodes)
        if version is not None:
            return "memory", version
        return "refused", None
    if name in ("base1", "base2"):
        version = remote_complete_version(engine)
        if version is not None:
            return "backup", version
        return "refused", None
    if name == "gradrep":
        version = gradrep_anchor_version(engine, failed_nodes)
        if version is not None:
            return "memory", version
        return "refused", None
    if name == "hybrid":
        return expected_outcome(engine.inner, failed_nodes)
    raise ValueError(f"no oracle for engine {name!r}")


# ----------------------------------------------------------------------
# Post-recovery invariant checks.  Each returns a list of violation
# strings (empty = invariant holds).
# ----------------------------------------------------------------------
def check_restored_states(job, expected_states: dict[int, dict]) -> list[str]:
    """Every worker live again, bit-identical to the checkpointed state."""
    violations = []
    for worker in range(job.world_size):
        state = job.state_dicts.get(worker)
        if state is None:
            violations.append(f"worker {worker} has no state after recovery")
            continue
        reference = expected_states.get(worker)
        if reference is None:
            continue  # non-writer replica of an FSDP-less layout
        if not state_dicts_equal(state, reference):
            violations.append(
                f"worker {worker} state differs from the checkpointed bytes"
            )
    return violations


def check_eccheck_redundancy(engine, version: int) -> list[str]:
    """All k + m chunks whole and metadata on every node again.

    Checked against the placement ``version`` was written under (or
    re-pointed to by a committed repair) and only on the nodes that
    placement uses — under a degraded regroup the chunk/metadata set
    lives entirely on the active subset.
    """
    plan = (
        engine.placement_of(version)
        if hasattr(engine, "placement_of")
        else engine.placement
    )
    groups = len(plan.data_group[0])
    active = getattr(engine, "active_nodes", None) or list(
        range(engine.job.cluster.num_nodes)
    )
    violations = []

    def check_chunk(node: int, kind: str, idx: int) -> None:
        for r in range(groups):
            key = engine.chunk_key(version, kind, idx, r)
            digest_key = engine.digest_key(version, kind, idx, r)
            if not (
                engine.host.contains(node, key)
                and engine.host.contains(node, digest_key)
            ):
                violations.append(
                    f"{kind} chunk {idx} packet {r} missing on node {node}"
                )
            elif not verify_chunk(
                engine.host.get(node, key), engine.host.get(node, digest_key)
            ):
                violations.append(
                    f"{kind} chunk {idx} packet {r} corrupt on node {node}"
                )

    for j, node in enumerate(plan.data_nodes):
        check_chunk(node, "data", j)
    for i, node in enumerate(plan.parity_nodes):
        check_chunk(node, "parity", i)
    for node in active:
        for worker in range(engine.job.world_size):
            if not engine.host.contains(node, ("meta", version, worker)):
                violations.append(
                    f"metadata for worker {worker} missing on node {node}"
                )
    return violations


def check_degraded_recoverable(engine, version: int) -> list[str]:
    """A degraded save must survive the loss of any m' further nodes.

    For every subset of ``m' = plan.m`` active nodes, the chunks whole on
    the remaining actives must still number >= k'.  With whole chunks on
    distinct nodes this is guaranteed combinatorially, but the check
    re-derives it from raw storage (missing/corrupt packets, double-
    hosted chunks and metadata gaps all surface here).
    """
    from itertools import combinations

    plan = (
        engine.placement_of(version)
        if hasattr(engine, "placement_of")
        else engine.placement
    )
    groups = len(plan.data_group[0])
    active = getattr(engine, "active_nodes", None) or list(
        range(engine.job.cluster.num_nodes)
    )
    violations = []

    def chunk_whole(node: int, kind: str, idx: int) -> bool:
        for r in range(groups):
            key = engine.chunk_key(version, kind, idx, r)
            digest_key = engine.digest_key(version, kind, idx, r)
            if not (
                engine.host.contains(node, key)
                and engine.host.contains(node, digest_key)
            ):
                return False
            if not verify_chunk(
                engine.host.get(node, key), engine.host.get(node, digest_key)
            ):
                return False
        return True

    holder: dict[int, int] = {}
    for j, node in enumerate(plan.data_nodes):
        if chunk_whole(node, "data", j):
            holder[j] = node
    for i, node in enumerate(plan.parity_nodes):
        if chunk_whole(node, "parity", i):
            holder[plan.k + i] = node
    for lost in combinations(active, plan.m):
        lost_set = set(lost)
        surviving_chunks = sum(
            1 for node in holder.values() if node not in lost_set
        )
        if surviving_chunks < plan.k:
            violations.append(
                f"v{version}: losing nodes {sorted(lost_set)} leaves only "
                f"{surviving_chunks} of k={plan.k} chunks"
            )
    for worker in range(engine.job.world_size):
        nodes_with_meta = [
            n for n in active if engine.host.contains(n, ("meta", version, worker))
        ]
        if len(nodes_with_meta) < plan.m + 1:
            violations.append(
                f"v{version}: metadata for worker {worker} on only "
                f"{len(nodes_with_meta)} nodes (< m+1 = {plan.m + 1})"
            )
    return violations


def check_repair_ledger(ledger, engine, version: int) -> list[str]:
    """Crash consistency of a repair ledger against raw storage.

    Every item the ledger marked done must actually be present and pass
    digest verification — the store-then-mark ordering promises marked
    implies durable.  (The converse — present but unmarked — is fine:
    a crash between store and mark just redoes the transfer.)
    """
    violations = []
    epoch = getattr(ledger, "epoch", 0)
    for item in ledger.done_items():
        key = engine.chunk_key(version, item.kind, item.idx, item.r, epoch=epoch)
        digest_key = engine.digest_key(
            version, item.kind, item.idx, item.r, epoch=epoch
        )
        if not (
            engine.host.contains(item.node, key)
            and engine.host.contains(item.node, digest_key)
        ):
            violations.append(
                f"ledger marked {item.kind}[{item.idx}].{item.r} done on "
                f"node {item.node} but the packet is missing"
            )
        elif not verify_chunk(
            engine.host.get(item.node, key),
            engine.host.get(item.node, digest_key),
        ):
            violations.append(
                f"ledger marked {item.kind}[{item.idx}].{item.r} done on "
                f"node {item.node} but the packet is corrupt"
            )
    return violations


def check_replication_redundancy(engine, version: int) -> list[str]:
    """Every group member holds every group writer's snapshot again."""
    writers = set(engine.job.writers)
    violations = []
    for group in engine.groups():
        group_writers = [
            w
            for n in group
            for w in engine.job.cluster.workers_of(n)
            if w in writers
        ]
        for peer in group:
            for worker in group_writers:
                if not engine.host.contains(peer, ("ckpt", version, worker)):
                    violations.append(
                        f"replica of worker {worker} missing on node {peer}"
                    )
    return violations


def check_gradlog_redundancy(engine) -> list[str]:
    """Every kept log entry back at full redundancy.

    After recovery the tail must tolerate the next failure like any
    fresh entry: commit record on every node, every writer's delta
    verified on home *and* buddy.
    """
    num_nodes = engine.job.cluster.num_nodes
    all_nodes = list(range(num_nodes))
    violations = []
    for seq in grad_stream_seqs(engine, all_nodes):
        record = _grad_entry_committed(engine, seq, all_nodes)
        if record is None:
            violations.append(
                f"log entry seq={seq} commit record not on every node"
            )
        for worker in engine.job.writers:
            home = engine.job.node_of(worker)
            for node in (home, _grad_buddy(engine.job, home)):
                if not (
                    engine.host.contains(node, ("grad", seq, worker))
                    and engine.host.contains(node, ("graddig", seq, worker))
                    and engine.host.contains(node, ("gradmeta", seq, worker))
                ):
                    violations.append(
                        f"log entry seq={seq} worker {worker} delta missing "
                        f"on node {node}"
                    )
                elif not verify_chunk(
                    engine.host.get(node, ("grad", seq, worker)),
                    engine.host.get(node, ("graddig", seq, worker)),
                ):
                    violations.append(
                        f"log entry seq={seq} worker {worker} delta corrupt "
                        f"on node {node}"
                    )
    return violations


def check_gradrep_redundancy(engine, version: int) -> list[str]:
    """Anchor fully replicated again plus the log tail redundant."""
    num_nodes = engine.job.cluster.num_nodes
    violations = []
    for node in range(num_nodes):
        if not engine.host.contains(node, ("anchor", version)):
            violations.append(f"anchor v{version} record missing on node {node}")
    for worker in engine.job.writers:
        home = engine.job.node_of(worker)
        for node in (home, _grad_buddy(engine.job, home)):
            if not all(
                engine.host.contains(node, (kind, version, worker))
                for kind in ("apkt", "adig", "ameta")
            ):
                violations.append(
                    f"anchor v{version} packet of worker {worker} missing "
                    f"on node {node}"
                )
            elif not verify_chunk(
                engine.host.get(node, ("apkt", version, worker)),
                engine.host.get(node, ("adig", version, worker)),
            ):
                violations.append(
                    f"anchor v{version} packet of worker {worker} corrupt "
                    f"on node {node}"
                )
    return violations + check_gradlog_redundancy(engine)


def check_redundancy(engine, version: int, from_backup: bool) -> list[str]:
    """Dispatch the engine-appropriate redundancy check.

    Backup restores rebuild GPU state but not the in-memory layout, so
    redundancy is only asserted for in-memory recoveries; base1/base2
    keep their redundancy in remote storage, already checked by the
    oracle's completeness walk.
    """
    if from_backup:
        return []
    if engine.name == "eccheck":
        return check_eccheck_redundancy(engine, version)
    if engine.name == "base3":
        return check_replication_redundancy(engine, version)
    if engine.name == "gradrep":
        return check_gradrep_redundancy(engine, version)
    if engine.name == "hybrid":
        return check_eccheck_redundancy(
            engine.inner, version
        ) + check_gradlog_redundancy(engine)
    return []

"""Recoverability oracles and post-recovery invariant checks.

Everything here re-derives, from raw storage contents only, what a
correct engine *must* do — deliberately without calling the engines'
own recovery helpers.  A campaign consults the oracle before asking the
engine to restore; disagreement in either direction is a finding:

* the engine refuses although the oracle proves a recoverable version
  exists (lost availability), or
* the engine "recovers" a version the oracle knows is torn or stale
  (lost correctness — the failure mode the torn-version walk-back fixes).

The oracle must run *before* ``restore`` is invoked: restoring wipes the
failed nodes' host stores, and the oracle reads the same survivor state
the engine will see.
"""

from __future__ import annotations

from repro.core.integrity import verify_chunk
from repro.tensors.state_dict import state_dicts_equal


# ----------------------------------------------------------------------
# Pre-restore oracles: which version *should* a correct engine restore?
# ----------------------------------------------------------------------
def eccheck_memory_version(engine, failed_nodes: set[int]) -> int | None:
    """Newest in-memory version a correct ECCheck restore must accept.

    A version qualifies when >= k chunks are whole on surviving nodes
    (every reduction-group packet present and passing its CRC) and every
    worker's metadata record is reachable on some survivor — the commit
    rule.  Returns ``None`` when only the remote backup (or nothing) can
    help.
    """
    plan = engine.placement
    groups = len(plan.data_group[0])
    survivors = [
        n for n in range(engine.job.cluster.num_nodes) if n not in failed_nodes
    ]
    if not survivors:
        return None

    def chunk_whole(node: int, version: int, kind: str, idx: int) -> bool:
        for r in range(groups):
            key = ("chunk", version, kind, idx, r)
            digest_key = ("digest", version, kind, idx, r)
            if not (
                engine.host.contains(node, key)
                and engine.host.contains(node, digest_key)
            ):
                return False
            if not verify_chunk(
                engine.host.get(node, key), engine.host.get(node, digest_key)
            ):
                return False
        return True

    for version in range(engine.version, 0, -1):
        whole = 0
        for j, node in enumerate(plan.data_nodes):
            if node in survivors and chunk_whole(node, version, "data", j):
                whole += 1
        for i, node in enumerate(plan.parity_nodes):
            if node in survivors and chunk_whole(node, version, "parity", i):
                whole += 1
        if whole < plan.k:
            continue
        if all(
            any(
                engine.host.contains(node, ("meta", version, worker))
                for node in survivors
            )
            for worker in range(engine.job.world_size)
        ):
            return version
    return None


def remote_complete_version(engine) -> int | None:
    """Newest remote version holding every writer's blob (None if none)."""
    for version in range(engine.version, 0, -1):
        if all(
            engine.remote.contains(("ckpt", version, worker))
            for worker in engine.job.writers
        ):
            return version
    return None


def replication_memory_version(engine, failed_nodes: set[int]) -> int | None:
    """Newest version a correct base3 restore must accept.

    Requires a survivor in every replication group and the version fully
    replicated across all survivors (full replication is base3's commit
    record — a torn broadcast leaves some survivor without a peer's key).
    """
    groups = engine.groups()
    if any(all(n in failed_nodes for n in g) for g in groups):
        return None
    writers = set(engine.job.writers)
    for version in range(engine.version, 0, -1):
        ok = True
        for group in groups:
            group_writers = [
                w
                for n in group
                for w in engine.job.cluster.workers_of(n)
                if w in writers
            ]
            for peer in group:
                if peer in failed_nodes:
                    continue
                if not all(
                    engine.host.contains(peer, ("ckpt", version, w))
                    for w in group_writers
                ):
                    ok = False
                    break
            if not ok:
                break
        if ok:
            return version
    return None


def expected_outcome(engine, failed_nodes: set[int]) -> tuple[str, int | None]:
    """(outcome, version) a correct engine must produce for this failure.

    Outcome is ``"memory"``, ``"backup"`` or ``"refused"``; the version is
    the exact checkpoint version the restore must land on (None when
    refusing is correct).
    """
    name = engine.name
    if name == "eccheck":
        version = eccheck_memory_version(engine, failed_nodes)
        if version is not None:
            return "memory", version
        backup = remote_complete_version(engine)
        if backup is not None:
            return "backup", backup
        return "refused", None
    if name == "base3":
        version = replication_memory_version(engine, failed_nodes)
        if version is not None:
            return "memory", version
        return "refused", None
    if name in ("base1", "base2"):
        version = remote_complete_version(engine)
        if version is not None:
            return "backup", version
        return "refused", None
    raise ValueError(f"no oracle for engine {name!r}")


# ----------------------------------------------------------------------
# Post-recovery invariant checks.  Each returns a list of violation
# strings (empty = invariant holds).
# ----------------------------------------------------------------------
def check_restored_states(job, expected_states: dict[int, dict]) -> list[str]:
    """Every worker live again, bit-identical to the checkpointed state."""
    violations = []
    for worker in range(job.world_size):
        state = job.state_dicts.get(worker)
        if state is None:
            violations.append(f"worker {worker} has no state after recovery")
            continue
        reference = expected_states.get(worker)
        if reference is None:
            continue  # non-writer replica of an FSDP-less layout
        if not state_dicts_equal(state, reference):
            violations.append(
                f"worker {worker} state differs from the checkpointed bytes"
            )
    return violations


def check_eccheck_redundancy(engine, version: int) -> list[str]:
    """All k + m chunks whole and metadata on every node again."""
    plan = engine.placement
    groups = len(plan.data_group[0])
    violations = []

    def check_chunk(node: int, kind: str, idx: int) -> None:
        for r in range(groups):
            key = ("chunk", version, kind, idx, r)
            digest_key = ("digest", version, kind, idx, r)
            if not (
                engine.host.contains(node, key)
                and engine.host.contains(node, digest_key)
            ):
                violations.append(
                    f"{kind} chunk {idx} packet {r} missing on node {node}"
                )
            elif not verify_chunk(
                engine.host.get(node, key), engine.host.get(node, digest_key)
            ):
                violations.append(
                    f"{kind} chunk {idx} packet {r} corrupt on node {node}"
                )

    for j, node in enumerate(plan.data_nodes):
        check_chunk(node, "data", j)
    for i, node in enumerate(plan.parity_nodes):
        check_chunk(node, "parity", i)
    for node in range(engine.job.cluster.num_nodes):
        for worker in range(engine.job.world_size):
            if not engine.host.contains(node, ("meta", version, worker)):
                violations.append(
                    f"metadata for worker {worker} missing on node {node}"
                )
    return violations


def check_replication_redundancy(engine, version: int) -> list[str]:
    """Every group member holds every group writer's snapshot again."""
    writers = set(engine.job.writers)
    violations = []
    for group in engine.groups():
        group_writers = [
            w
            for n in group
            for w in engine.job.cluster.workers_of(n)
            if w in writers
        ]
        for peer in group:
            for worker in group_writers:
                if not engine.host.contains(peer, ("ckpt", version, worker)):
                    violations.append(
                        f"replica of worker {worker} missing on node {peer}"
                    )
    return violations


def check_redundancy(engine, version: int, from_backup: bool) -> list[str]:
    """Dispatch the engine-appropriate redundancy check.

    Backup restores rebuild GPU state but not the in-memory layout, so
    redundancy is only asserted for in-memory recoveries; base1/base2
    keep their redundancy in remote storage, already checked by the
    oracle's completeness walk.
    """
    if from_backup:
        return []
    if engine.name == "eccheck":
        return check_eccheck_redundancy(engine, version)
    if engine.name == "base3":
        return check_replication_redundancy(engine, version)
    return []

"""Replay-aware differential chaos campaign: eccheck vs gradrep vs hybrid.

The generic campaign (:mod:`repro.chaos.campaign`) runs each engine
against *its own* random episode.  This campaign is differential: one
**scenario** — round structure, crash draws, corruption draws, failure
sets — is drawn once per episode from ``default_rng([seed, episode])``
and then every engine runs against that same scenario with the same
job seed, so the per-engine outcomes are directly comparable.

Per engine and episode the harness checks the full replay-aware oracle
(:func:`repro.chaos.invariants.expected_recovery`):

* outcome tier and restored version;
* **replay depth** — exactly the committed, intact, contiguous
  gradient-log tail, re-derived independently from raw survivor storage;
* **resume iteration** — the absolute iteration the recovered state must
  correspond to, byte-identical to the snapshot taken when training
  first passed that iteration;
* **torn entries are never replayed** — a crash injected mid-append
  leaves a torn log entry; resuming at or past its iteration on the same
  base is a violation;
* redundancy re-established (anchor + log copies, EC chunks) and the
  manager's ``iterations_lost`` ledger exact.

Every run executes under a collecting tracer and reconciles the traced
save/replicate/restore phase sums against the report breakdowns at
1e-9 relative tolerance; the reconciliation tables are embedded in the
report so ``repro analyze`` can re-verify them offline.

The campaign's product is the **crossover table**: steady-state overhead
per iteration (checkpoint stalls + replication stalls) against average
iterations lost per failure, and for each engine pair the failure
frequency (MTBF in iterations) at which their total costs cross.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.errors import CheckpointError, RecoveryError
from repro.chaos.campaign import (
    FAILURE_MODES,
    FAILURE_MODE_WEIGHTS,
    P_CORRUPT,
    P_CRASH,
)
from repro.chaos.injection import CrashInjector, CrashPlan, InjectedCrash
from repro.chaos.invariants import (
    check_redundancy,
    check_restored_states,
    expected_recovery,
)
from repro.checkpoint.job import TrainingJob
from repro.checkpoint.manager import CheckpointManager
from repro.core.eccheck import ECCheckConfig
from repro.core.integrity import corrupt_buffer
from repro.core.registry import build_engine
from repro.core.registry import engine_names as registry_engine_names
from repro.obs.alerts import AlertEngine, AlertRule
from repro.obs.timeseries import TimeSeriesSampler
from repro.obs.trace_io import crosscheck_totals, phase_totals
from repro.parallel.strategy import ParallelismSpec
from repro.parallel.topology import ClusterSpec
from repro.sim.failures import (
    concurrent_failure_counts,
    poisson_failure_trace,
    sample_correlated_failures,
    sample_node_failures,
)

#: The differential triple; order fixes the crossover table rows.
HYBRID_ENGINES = ("eccheck", "gradrep", "hybrid")

#: Crash points that fire inside ``replicate_iteration`` (a torn *log
#: entry*) rather than inside ``save`` (a torn *version*).
GRAD_POINTS = (
    "pre_grad_store",
    "mid_grad_replicate",
    "pre_grad_commit",
    "mid_grad_broadcast",
)

#: Storage keys the corruption draw may target, per payload family.
_CORRUPTIBLE_KINDS = ("chunk", "grad", "apkt")

_TESTBED = dict(num_nodes=4, gpus_per_node=2, nodes_per_rack=2)


@dataclass(frozen=True)
class HybridChaosConfig:
    """Campaign parameters (defaults = the CI smoke shape)."""

    episodes: int = 20
    seed: int = 0
    engines: tuple[str, ...] = HYBRID_ENGINES
    max_rounds: int = 3
    #: Checkpoint interval — also scales the log-depth alert thresholds.
    interval: int = 3
    model: str = "gpt2-h1024-L16"
    scale: float = 5e-4
    #: Baseline iteration seconds, used only to convert "iterations lost
    #: per failure" into seconds for the crossover computation.
    iteration_s: float = 1.0
    #: Attach a per-run telemetry timeline (log-depth signal + online
    #: alert rules) sampled against the derived report clock.
    timeline: bool = False
    timeline_period_s: float = 60.0


def hybrid_alert_rules(interval: int) -> list[AlertRule]:
    """Log-depth SLOs for streaming engines.

    A healthy run rebases the gradient log at every checkpoint, so depth
    stays near ``interval``; a depth past ``3x`` means rebases are being
    skipped (warning) and past ``8x`` the replay tail has run away — the
    bounded-replay promise of the hybrid design is broken (violation).
    """
    return [
        AlertRule(
            name="log-depth-high",
            signal="log_depth",
            reduce="last",
            op=">",
            threshold=3.0 * interval,
            severity="warning",
            description=(
                "gradient-log depth exceeded 3x the checkpoint interval: "
                "rebases are not keeping up"
            ),
        ),
        AlertRule(
            name="log-depth-runaway",
            signal="log_depth",
            reduce="last",
            op=">",
            threshold=8.0 * interval,
            severity="violation",
            description=(
                "gradient-log depth exceeded 8x the checkpoint interval: "
                "replay is no longer bounded"
            ),
        ),
    ]


# ----------------------------------------------------------------------
# Scenario: drawn once per episode, replayed verbatim by every engine.
# ----------------------------------------------------------------------
def _sample_failures(mode: str, cluster, rng: np.random.Generator) -> set[int]:
    """Cluster-shape-only failure draw (no job needed, so the rng stream
    cannot depend on which engine later consumes the scenario)."""
    n = cluster.num_nodes
    if mode == "none":
        return set()
    if mode == "independent":
        return sample_node_failures(n, 0.3, rng)
    if mode == "correlated":
        return sample_correlated_failures(cluster, 0.2, 0.15, rng)
    if mode == "poisson":
        trace = poisson_failure_trace(
            n, mtbf_hours=float(rng.uniform(20.0, 120.0)),
            duration_hours=24.0, rng=rng,
        )
        counts = concurrent_failure_counts(trace, 1.0, duration_hours=24.0)
        count = min(n, counts[int(rng.integers(len(counts)))])
        return {int(x) for x in rng.choice(n, size=count, replace=False)}
    if mode == "targeted":
        size = int(rng.integers(1, n))
        return {int(x) for x in rng.choice(n, size=size, replace=False)}
    raise ValueError(f"unknown failure mode {mode!r}")


def draw_scenario(config: HybridChaosConfig, episode: int) -> dict:
    """The episode's shared adversity, as plain data.

    Engine-dependent choices (which crash point, which stored payload to
    rot) are deferred: the scenario carries uniform floats (``u``) that
    each engine maps onto its own crash-point tuple / sorted candidate
    key list, so every engine faces the *same draw* even though their
    crash surfaces differ.
    """
    rng = np.random.default_rng([config.seed, episode])
    cluster = ClusterSpec(**_TESTBED)
    rounds = []
    for _ in range(int(rng.integers(1, config.max_rounds + 1))):
        spec: dict = {
            "iterations": int(rng.integers(2, config.interval + 3)),
            "crash": None,
            "corrupt": None,
        }
        if rng.random() < P_CRASH:
            spec["crash"] = {
                "u": float(rng.random()),
                "after": int(rng.integers(0, 3)),
            }
        if rng.random() < P_CORRUPT:
            spec["corrupt"] = {
                "u": float(rng.random()),
                "pos": float(rng.random()),
                "mask": int(rng.integers(1, 256)),
            }
        mode = str(rng.choice(FAILURE_MODES, p=FAILURE_MODE_WEIGHTS))
        failed = _sample_failures(mode, cluster, rng)
        spec["failure_mode"] = mode
        spec["failed"] = sorted(
            int(n) for n in failed if n < cluster.num_nodes
        )
        rounds.append(spec)
    return {"rounds": rounds}


def _pick(u: float, items: int) -> int:
    return min(int(u * items), items - 1)


def _corrupt_from_spec(engine, spec: dict) -> str | None:
    """Rot one stored payload chosen by the scenario's uniform draws."""
    candidates = []
    for node in range(engine.job.cluster.num_nodes):
        for key in engine.host.keys(node):
            if isinstance(key, tuple) and key[0] in _CORRUPTIBLE_KINDS:
                candidates.append((node, key))
    if not candidates:
        return None
    candidates.sort(key=repr)
    node, key = candidates[_pick(spec["u"], len(candidates))]
    payload = engine.host.get(node, key)
    corrupt_buffer(
        payload,
        byte_index=_pick(spec["pos"], payload.size),
        mask=spec["mask"],
    )
    return f"node {node} {key}"


# ----------------------------------------------------------------------
@dataclass
class HybridEpisodeResult:
    """One engine's run through one shared scenario."""

    episode: int
    engine: str
    cycles: list[dict] = field(default_factory=list)
    violations: list[str] = field(default_factory=list)
    #: Steady-state accounting for the crossover table.
    metrics: dict = field(default_factory=dict)
    #: Traced-vs-reported phase sums per report kind, for ``repro
    #: analyze`` to re-verify offline.
    phases: dict = field(default_factory=dict)
    timeline: dict | None = None


@dataclass
class HybridCampaignReport:
    """All runs plus the per-engine crossover analysis."""

    config: HybridChaosConfig
    episodes: list[HybridEpisodeResult]

    @property
    def violations(self) -> list[str]:
        return [
            f"episode {e.episode} ({e.engine}): {v}"
            for e in self.episodes
            for v in e.violations
        ]

    @property
    def cycles(self) -> list[dict]:
        return [c for e in self.episodes for c in e.cycles]

    def alert_counts(self) -> dict[str, int]:
        counts = {"warning": 0, "violation": 0}
        for e in self.episodes:
            if e.timeline and "alerts" in e.timeline:
                for key in counts:
                    counts[key] += e.timeline["alerts"]["counts"].get(key, 0)
        return counts

    # -- crossover ------------------------------------------------------
    def engine_summary(self) -> dict[str, dict]:
        """Per-engine steady-state overhead vs failure-time loss."""
        summary: dict[str, dict] = {}
        for name in self.config.engines:
            runs = [e for e in self.episodes if e.engine == name]
            iters = sum(r.metrics.get("iterations", 0) for r in runs)
            overhead = sum(r.metrics.get("overhead_s", 0.0) for r in runs)
            recoveries = sum(r.metrics.get("recoveries", 0) for r in runs)
            lost = sum(r.metrics.get("iterations_lost", 0) for r in runs)
            replayed = sum(
                r.metrics.get("replayed_iterations", 0) for r in runs
            )
            refusals = sum(r.metrics.get("refusals", 0) for r in runs)
            summary[name] = {
                "iterations": iters,
                "overhead_s": round(overhead, 9),
                "overhead_s_per_iteration": round(overhead / iters, 9)
                if iters
                else 0.0,
                "recoveries": recoveries,
                "refusals": refusals,
                "iterations_lost": lost,
                "avg_iterations_lost": round(lost / recoveries, 9)
                if recoveries
                else 0.0,
                "replayed_iterations": replayed,
            }
        return summary

    def crossover_table(self) -> list[dict]:
        """Pairwise failure-frequency break-even points.

        With per-iteration overhead ``oh`` (seconds) and ``lost``
        iterations per failure, the expected cost per iteration under a
        mean time between failures of ``M`` iterations is ``oh + lost *
        iteration_s / M``.  Two engines' costs cross at ``M* = (lost_a -
        lost_b) * iteration_s / (oh_b - oh_a)``; a negative ``M*`` means
        one engine is cheaper at every failure rate (it dominates).
        """
        summary = self.engine_summary()
        s = self.config.iteration_s
        rows: list[dict] = []
        names = list(self.config.engines)
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                oh_a = summary[a]["overhead_s_per_iteration"]
                oh_b = summary[b]["overhead_s_per_iteration"]
                lost_a = summary[a]["avg_iterations_lost"]
                lost_b = summary[b]["avg_iterations_lost"]
                row: dict = {"pair": [a, b]}
                d_oh = oh_b - oh_a
                d_lost = lost_a - lost_b
                if abs(d_oh) < 1e-15 and abs(d_lost) < 1e-15:
                    row["verdict"] = "equivalent"
                elif d_oh == 0.0:
                    row["verdict"] = (
                        f"{a if d_lost < 0 else b} dominates (equal "
                        f"overhead, lower loss)"
                    )
                else:
                    mtbf = d_lost * s / d_oh
                    if mtbf <= 0:
                        winner = a if (oh_a <= oh_b and lost_a <= lost_b) else b
                        row["verdict"] = (
                            f"{winner} dominates (lower overhead and loss)"
                        )
                    else:
                        # The engine with lower loss wins when failures
                        # are frequent (MTBF below the crossover).
                        frequent_winner = a if lost_a < lost_b else b
                        row["crossover_mtbf_iterations"] = round(mtbf, 9)
                        row["verdict"] = (
                            f"{frequent_winner} cheaper when failures "
                            f"arrive more often than every "
                            f"{round(mtbf, 3)} iterations"
                        )
                rows.append(row)
        return rows

    # -- export ---------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-data form, deliberately provenance-free so identical
        campaigns compare byte-equal (determinism tests rely on it)."""
        return {
            "config": {
                "episodes": self.config.episodes,
                "seed": self.config.seed,
                "engines": list(self.config.engines),
                "max_rounds": self.config.max_rounds,
                "interval": self.config.interval,
                "model": self.config.model,
                "scale": self.config.scale,
                "iteration_s": self.config.iteration_s,
            },
            "total_recovery_cycles": len(self.cycles),
            "engine_summary": self.engine_summary(),
            "crossover": self.crossover_table(),
            "violations": self.violations,
            "alerts": self.alert_counts(),
            "episodes": [
                {
                    "episode": e.episode,
                    "engine": e.engine,
                    "cycles": e.cycles,
                    "violations": e.violations,
                    "metrics": e.metrics,
                    "phases": e.phases,
                    **({"timeline": e.timeline} if e.timeline else {}),
                }
                for e in self.episodes
            ],
        }

    def to_json(self, provenance: bool = True) -> str:
        payload = self.to_dict()
        if provenance:
            from repro.obs.provenance import provenance_stamp

            payload["provenance"] = provenance_stamp()
        return json.dumps(payload, indent=2, sort_keys=True)

    def render(self) -> str:
        """ASCII crossover table plus violation and alert counts."""
        summary = self.engine_summary()
        alerts = self.alert_counts()
        lines = [
            f"hybrid campaign: {self.config.episodes} episodes x "
            f"{len(self.config.engines)} engines, "
            f"{len(self.cycles)} recovery cycles, "
            f"{len(self.violations)} violations, "
            f"{alerts['violation']} alert violations",
            f"{'engine':<10s} {'overhead s/iter':>16s} "
            f"{'avg iters lost':>15s} {'recoveries':>11s} "
            f"{'refusals':>9s} {'replayed':>9s}",
        ]
        for name, row in summary.items():
            lines.append(
                f"{name:<10s} {row['overhead_s_per_iteration']:>16.6f} "
                f"{row['avg_iterations_lost']:>15.3f} "
                f"{row['recoveries']:>11d} {row['refusals']:>9d} "
                f"{row['replayed_iterations']:>9d}"
            )
        lines.append("crossover (failure frequency where costs cross):")
        for row in self.crossover_table():
            pair = " vs ".join(row["pair"])
            lines.append(f"  {pair}: {row['verdict']}")
        for violation in self.violations:
            lines.append(f"VIOLATION: {violation}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
def _build_engine(engine_name: str, config: HybridChaosConfig, job_seed: int):
    job = TrainingJob.create(
        model=config.model,
        cluster=ClusterSpec(**_TESTBED),
        strategy=ParallelismSpec(tensor_parallel=2, pipeline_parallel=4),
        scale=config.scale,
        seed=job_seed,
    )
    try:
        engine = build_engine(
            engine_name,
            job,
            ECCheckConfig(k=2, m=2, encode_threads=2, engine=engine_name),
            group_size=2,
        )
    except CheckpointError as exc:
        raise ValueError(
            f"unknown engine {engine_name!r}; choose from "
            f"{', '.join(registry_engine_names())}"
        ) from exc
    return job, engine


def run_hybrid_episode(
    engine_name: str,
    episode: int,
    config: HybridChaosConfig,
    scenario: dict | None = None,
) -> HybridEpisodeResult:
    """Run one engine through the episode's shared scenario.

    Always traced: the phase-reconciliation check is part of the
    campaign's contract, not an option.
    """
    scenario = scenario or draw_scenario(config, episode)
    sampler = None
    if config.timeline:
        sampler = TimeSeriesSampler(
            period_s=config.timeline_period_s,
            alert_engine=AlertEngine(hybrid_alert_rules(config.interval)),
        )
    with obs.use_tracer() as tracer:
        result = _run_episode_impl(
            engine_name, episode, config, scenario, sampler
        )
        spans = [r for r in tracer.records() if r["type"] == "span"]
    _reconcile_phases(result, spans)
    if sampler is not None:
        result.timeline = sampler.timeline_dict()
    return result


def _reconcile_phases(result: HybridEpisodeResult, spans: list[dict]) -> None:
    """Traced phase sums must equal report breakdowns at 1e-9."""
    for kind, breakdowns in result.phases.pop("_breakdowns").items():
        traced = phase_totals(spans, kind=kind)
        if not traced and not breakdowns:
            continue
        reported: dict[str, float] = {}
        for breakdown in breakdowns:
            for key, value in breakdown.items():
                reported[key] = reported.get(key, 0.0) + float(value)
        for problem in crosscheck_totals(traced, breakdowns):
            result.violations.append(f"{kind} phase reconciliation: {problem}")
        result.phases[kind] = {
            "traced": {k: traced[k] for k in sorted(traced)},
            "reported": {k: reported[k] for k in sorted(reported)},
        }


def _run_episode_impl(
    engine_name: str,
    episode: int,
    config: HybridChaosConfig,
    scenario: dict,
    sampler: TimeSeriesSampler | None,
) -> HybridEpisodeResult:
    result = HybridEpisodeResult(episode=episode, engine=engine_name)
    job, engine = _build_engine(
        engine_name, config, job_seed=config.seed * 7919 + episode
    )
    manager = CheckpointManager(job, engine, interval=config.interval)

    #: Bytes of every iteration training passed — replay-aware recovery
    #: can resume at any logged iteration, not just checkpoint edges.
    iteration_states: dict[int, dict] = {}
    version_iteration: dict[int, int] = {}
    torn_versions: set[int] = set()
    #: ``(base_version, iteration)`` of log entries torn by a crash
    #: injected mid-append — these must never be replayed.
    torn_entries: list[tuple[int | None, int]] = []
    recovery_reports: list = []
    iterations = 0
    refusals = 0
    drained_saves = 0
    drained_reps = 0
    t = 0.0

    if sampler is not None:
        sampler.register_probe(
            "checkpoints", lambda _t: float(manager.stats.checkpoints)
        )
        sampler.register_probe(
            "replications", lambda _t: float(manager.stats.replications)
        )
        sampler.register_probe(
            "recoveries", lambda _t: float(manager.stats.recoveries)
        )
        sampler.register_probe(
            "iterations_lost",
            lambda _t: float(manager.stats.iterations_lost),
        )
        sampler.register_probe(
            "log_depth",
            lambda _t: float(engine.log_depth())
            if hasattr(engine, "log_depth")
            else 0.0,
        )
        sampler.register_probe(
            "torn_entries", lambda _t: float(len(torn_entries))
        )
        sampler.sample(0.0, "baseline")

    def drain_reports() -> None:
        nonlocal drained_saves, drained_reps, t
        fresh = manager.stats.save_reports[drained_saves:]
        drained_saves = len(manager.stats.save_reports)
        for report in fresh:
            t += float(report.checkpoint_time)
            version_iteration.setdefault(
                report.version,
                manager._checkpoint_iteration_of_version[report.version],
            )
        reps = manager.stats.replicate_reports[drained_reps:]
        drained_reps = len(manager.stats.replicate_reports)
        for report in reps:
            t += float(report.replicate_time)
        if sampler is not None and (fresh or reps):
            sampler.advance(t)

    def advance_once() -> None:
        nonlocal iterations
        job.advance()
        iterations += 1
        # Snapshot before the step: neither save nor replicate mutates
        # training state, and a crashed step must not lose the snapshot.
        iteration_states[job.iteration] = job.snapshot_states()

    for round_spec in scenario["rounds"]:
        # -- train + checkpoint + replicate -----------------------------
        for _ in range(round_spec["iterations"]):
            advance_once()
            manager.step()
            drain_reports()

        # -- maybe crash a save or a replicate mid-flight ---------------
        crash_point = None
        crash_during = None
        if round_spec["crash"] is not None and engine.crash_points:
            points = engine.crash_points
            point = points[_pick(round_spec["crash"]["u"], len(points))]
            plan = CrashPlan(point=point, after=round_spec["crash"]["after"])
            advance_once()
            engine.crash_injector = CrashInjector(plan)
            try:
                manager.step()
            except InjectedCrash:
                crash_point = point
                if point in GRAD_POINTS:
                    crash_during = "replicate"
                    base = getattr(engine, "log", None)
                    torn_entries.append(
                        (base.base_version if base else None, job.iteration)
                    )
                    if sampler is not None:
                        sampler.note_event(t, "replicate_crash", point=point)
                else:
                    crash_during = "save"
                    torn_versions.add(engine.version)
                    if sampler is not None:
                        sampler.note_event(t, "save_crash", point=point)
            finally:
                engine.crash_injector = None
            if crash_point is None:
                drain_reports()

        # -- maybe rot a stored payload ---------------------------------
        corrupted = None
        if round_spec["corrupt"] is not None:
            corrupted = _corrupt_from_spec(engine, round_spec["corrupt"])
            if sampler is not None and corrupted is not None:
                sampler.note_event(t, "corruption", where=corrupted)

        # -- the shared failure -----------------------------------------
        failed = set(round_spec["failed"])
        mode = round_spec["failure_mode"]
        if not failed and crash_point is None and corrupted is None:
            continue  # nothing happened this round

        # -- oracle, then recover ---------------------------------------
        pred = expected_recovery(engine, failed)
        at_iteration = job.iteration
        lost_before = manager.stats.iterations_lost
        cycle = {
            "crash_point": crash_point,
            "crash_during": crash_during,
            "failure_mode": mode,
            "num_failed": len(failed),
            "corrupted": corrupted is not None,
            "expected": pred["outcome"],
            "expected_replayed": pred["replayed"],
        }
        if sampler is not None:
            sampler.note_event(t, "failure", mode=mode, ranks=sorted(failed))
        try:
            report = manager.on_failure(failed)
        except RecoveryError as exc:
            cycle["outcome"] = "refused"
            result.cycles.append(cycle)
            refusals += 1
            if pred["outcome"] != "refused":
                result.violations.append(
                    f"refused recovery although v{pred['version']} was "
                    f"recoverable from {pred['outcome']} with "
                    f"{pred['replayed']} replayed iterations "
                    f"(failed={sorted(failed)}, crash={crash_point}): {exc}"
                )
            break  # the job is down; this engine's episode ends here
        except Exception as exc:  # noqa: BLE001 — any leak is a finding
            cycle["outcome"] = "engine_error"
            result.cycles.append(cycle)
            result.violations.append(
                f"recovery raised {type(exc).__name__} instead of "
                f"recovering or refusing cleanly "
                f"(failed={sorted(failed)}, crash={crash_point}): {exc}"
            )
            break

        recovery_reports.append(report)
        tier = getattr(report, "tier", "memory")
        outcome = "backup" if tier == "remote" else tier
        replayed = getattr(report, "replayed_iterations", 0)
        cycle.update(
            outcome=outcome,
            version=report.version,
            replayed=replayed,
            resume_iteration=job.iteration,
            iterations_lost=manager.stats.iterations_lost - lost_before,
        )
        result.cycles.append(cycle)
        if sampler is not None:
            t += float(report.recovery_time)
            sampler.advance(t)

        if pred["outcome"] == "refused":
            result.violations.append(
                f"engine restored v{report.version} although the oracle "
                f"found no recoverable state (failed={sorted(failed)})"
            )
            break
        if outcome != pred["outcome"] or report.version != pred["version"]:
            result.violations.append(
                f"restored v{report.version} from {outcome}, expected "
                f"v{pred['version']} from {pred['outcome']} "
                f"(failed={sorted(failed)}, crash={crash_point})"
            )
        if replayed != pred["replayed"]:
            result.violations.append(
                f"replayed {replayed} log entries, oracle expected "
                f"{pred['replayed']} (v{report.version}, "
                f"failed={sorted(failed)}, crash={crash_point})"
            )
        if report.version in torn_versions:
            result.violations.append(
                f"restored torn version v{report.version} "
                f"(crash={crash_point}, failed={sorted(failed)})"
            )
        for torn_base, torn_iteration in torn_entries:
            if report.version == torn_base and job.iteration >= torn_iteration:
                result.violations.append(
                    f"resumed at iteration {job.iteration} on base "
                    f"v{torn_base}: the log entry for iteration "
                    f"{torn_iteration} was torn and must never be replayed"
                )
        expected_resume = pred["resume_iteration"]
        if expected_resume is None:
            expected_resume = version_iteration.get(report.version)
        if expected_resume is None:
            result.violations.append(
                f"restored v{report.version}, a version no completed save "
                f"ever committed"
            )
        else:
            if job.iteration != expected_resume:
                result.violations.append(
                    f"job resumed at iteration {job.iteration}, expected "
                    f"{expected_resume} (v{report.version}, "
                    f"replayed={replayed})"
                )
            reference = iteration_states.get(expected_resume)
            if reference is None:
                result.violations.append(
                    f"no recorded training state for resume iteration "
                    f"{expected_resume}"
                )
            else:
                result.violations.extend(
                    check_restored_states(job, reference)
                )
            result.violations.extend(
                check_redundancy(
                    engine, report.version, from_backup=outcome == "backup"
                )
            )
            expected_lost = max(0, at_iteration - expected_resume)
            actual_lost = manager.stats.iterations_lost - lost_before
            if actual_lost != expected_lost:
                result.violations.append(
                    f"iterations_lost accounted {actual_lost}, expected "
                    f"{expected_lost} (at={at_iteration}, "
                    f"resumed at {expected_resume})"
                )

    if sampler is not None:
        sampler.finalize(t)
    result.metrics = {
        "iterations": iterations,
        "checkpoints": manager.stats.checkpoints,
        "replications": manager.stats.replications,
        "overhead_s": round(
            manager.stats.total_checkpoint_s
            + manager.stats.total_replicate_s,
            9,
        ),
        "recoveries": manager.stats.recoveries,
        "refusals": refusals,
        "iterations_lost": manager.stats.iterations_lost,
        "replayed_iterations": manager.stats.replayed_iterations,
        "bytes_replicated": manager.stats.bytes_replicated,
    }
    result.phases["_breakdowns"] = {
        "save": [dict(r.breakdown) for r in manager.stats.save_reports],
        "replicate": [
            dict(r.breakdown) for r in manager.stats.replicate_reports
        ],
        "restore": [dict(r.breakdown) for r in recovery_reports],
    }
    return result


def run_hybrid_campaign(
    config: HybridChaosConfig | None = None,
) -> HybridCampaignReport:
    """Every engine through every episode's shared scenario."""
    config = config or HybridChaosConfig()
    episodes: list[HybridEpisodeResult] = []
    for episode in range(config.episodes):
        scenario = draw_scenario(config, episode)
        for engine_name in config.engines:
            episodes.append(
                run_hybrid_episode(engine_name, episode, config, scenario)
            )
    return HybridCampaignReport(config=config, episodes=episodes)

"""Oracle-vs-engine differential testing, generalized for reuse.

The chaos campaigns each hand-roll the same three-step dance around
:func:`repro.chaos.invariants.expected_outcome`: consult the independent
recoverability oracle *before* asking the engine to restore, run the
restore, then compare what actually happened against the prediction.
This module names that dance so multi-tenant campaigns can run one
instance per tenant:

* :func:`predict` wraps the tier-aware oracle into an
  :class:`Expectation`;
* :func:`judge` turns (expectation, observed outcome) into violation
  strings — disagreement in *either* direction is a finding;
* :class:`DifferentialHarness` keeps one engine's predict/observe cycle
  and accumulates its violations, so a fleet holds a harness per tenant
  and aggregates at report time.

The oracle must run before ``restore`` is invoked: restoring wipes the
failed nodes' host stores, and the oracle reads the same survivor state
the engine will see.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chaos.invariants import expected_outcome

#: Observed-outcome labels :func:`judge` understands.  The first four
#: mirror the oracle's own vocabulary; ``"engine_error"`` flags an
#: exception that is neither a clean refusal nor a recovery.
OUTCOMES = ("memory", "disk", "backup", "refused", "engine_error")


@dataclass(frozen=True)
class Expectation:
    """What a correct engine must do for one failure, per the oracle.

    ``kind`` is ``"memory"``, ``"disk"``, ``"backup"`` or ``"refused"``;
    ``version`` the exact checkpoint the restore must land on (None when
    refusing is correct).  ``failed`` records the failure set the
    prediction was made for, so violation messages are self-describing.
    """

    kind: str
    version: int | None
    failed: tuple[int, ...] = ()

    @property
    def recoverable(self) -> bool:
        return self.kind != "refused"


def predict(engine, failed_nodes: set[int]) -> Expectation:
    """Run the tier-aware recoverability oracle for ``failed_nodes``."""
    kind, version = expected_outcome(engine, set(failed_nodes))
    return Expectation(
        kind=kind, version=version, failed=tuple(sorted(failed_nodes))
    )


def judge(
    expectation: Expectation,
    outcome: str,
    version: int | None = None,
    context: str = "",
) -> list[str]:
    """Compare an observed recovery against the oracle's prediction.

    Args:
        expectation: the pre-restore prediction from :func:`predict`.
        outcome: one of :data:`OUTCOMES`.
        version: the version the engine restored (None for refusals and
            errors).
        context: prefix for violation messages (e.g. a tenant name).

    Returns:
        Violation strings; empty when engine and oracle agree.
    """
    if outcome not in OUTCOMES:
        raise ValueError(f"unknown outcome {outcome!r}")
    prefix = f"{context}: " if context else ""
    failed = list(expectation.failed)
    if outcome == "engine_error":
        return [
            f"{prefix}recovery raised instead of "
            f"{'refusing' if not expectation.recoverable else 'restoring v%s from %s' % (expectation.version, expectation.kind)}"
            f" (failed={failed})"
        ]
    if outcome == "refused":
        if expectation.recoverable:
            return [
                f"{prefix}refused recovery although v{expectation.version} "
                f"was recoverable from {expectation.kind} (failed={failed})"
            ]
        return []
    # The engine claims it recovered.
    violations = []
    if not expectation.recoverable:
        violations.append(
            f"{prefix}recovered v{version} from {outcome} although the "
            f"oracle proves nothing was recoverable (failed={failed})"
        )
        return violations
    if outcome != expectation.kind:
        violations.append(
            f"{prefix}recovered from {outcome}, oracle expected "
            f"{expectation.kind} (failed={failed})"
        )
    if version != expectation.version:
        violations.append(
            f"{prefix}restored v{version}, oracle expected "
            f"v{expectation.version} (failed={failed})"
        )
    return violations


class DifferentialHarness:
    """One engine's predict -> restore -> judge cycle, with accounting.

    Usage per failure event::

        expectation = harness.predict(failed_ranks)
        try:
            report = controller.on_failure(failed_ranks, t)
        except RecoveryError:
            harness.observe("refused")
        else:
            harness.observe(report.tier, report.version)

    ``violations`` accumulates across the harness's lifetime; a fleet
    campaign keeps one harness per tenant and folds the lists into the
    episode report.
    """

    def __init__(self, engine, label: str = ""):
        self.engine = engine
        self.label = label
        self.violations: list[str] = []
        self.predictions = 0
        self.last_expectation: Expectation | None = None

    def predict(self, failed_nodes: set[int]) -> Expectation:
        """Predict before restore; remembers the expectation."""
        self.last_expectation = predict(self.engine, failed_nodes)
        self.predictions += 1
        return self.last_expectation

    def observe(self, outcome: str, version: int | None = None) -> list[str]:
        """Judge the observed outcome against the last prediction.

        Returns (and accumulates) the new violations.

        Raises:
            ValueError: when no prediction preceded the observation.
        """
        if self.last_expectation is None:
            raise ValueError("observe() without a preceding predict()")
        found = judge(
            self.last_expectation, outcome, version, context=self.label
        )
        self.violations.extend(found)
        self.last_expectation = None
        return found

"""Crash-point injection for the save pipeline.

Engines expose named *crash points* — step boundaries inside their save
flow (post-encode, post-XOR, mid-P2P, pre-metadata-broadcast, ...) — and
call :meth:`~repro.checkpoint.base.CheckpointEngine._fire` at each one.
When a campaign arms an engine with a :class:`CrashInjector`, the injector
raises :class:`InjectedCrash` at the planned point, aborting the save
mid-flight exactly where a real process crash would: whatever chunk
packets and metadata records already landed in host storage stay there as
a genuine torn version; everything later is simply missing.

The injector is thread-safe because ECCheck's step 3 runs the hooks from
the pipelined encode/XOR/transfer worker threads.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass


class InjectedCrash(Exception):
    """A deliberately injected crash aborting a save mid-flight.

    Deliberately *not* a :class:`~repro.errors.ReproError`: library code
    catching its own error hierarchy must never swallow an injected crash,
    just as it could not swallow a SIGKILL.
    """

    def __init__(self, point: str, hits: int, context: dict):
        super().__init__(f"injected crash at {point!r} (hit {hits})")
        self.point = point
        self.hits = hits
        self.context = dict(context)


@dataclass(frozen=True)
class CrashPlan:
    """Where and when to crash: the ``after + 1``-th hit of ``point`` fires."""

    point: str
    after: int = 0


class CrashInjector:
    """Callable armed on an engine; raises at the planned crash point.

    Engines invoke the injector as ``injector(point, **context)`` from
    their save flow.  Hits of other points are counted but harmless; the
    planned point's ``after + 1``-th hit raises :class:`InjectedCrash`
    exactly once (subsequent calls are no-ops, mirroring a process that is
    already dead and cannot crash twice).
    """

    def __init__(self, plan: CrashPlan):
        self.plan = plan
        self.fired = False
        self.hits: dict[str, int] = {}
        self._lock = threading.Lock()

    def __call__(self, point: str, **context) -> None:
        with self._lock:
            if self.fired:
                return
            self.hits[point] = self.hits.get(point, 0) + 1
            if point != self.plan.point:
                return
            if self.hits[point] <= self.plan.after:
                return
            self.fired = True
            raise InjectedCrash(point, self.hits[point], context)

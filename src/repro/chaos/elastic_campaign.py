"""Seeded elastic-membership chaos campaigns.

One *episode* builds the standard testbed (4 nodes x 2 GPUs, TP=2 /
PP=4) with an ECCheck engine under an
:class:`~repro.elastic.controller.ElasticClusterController` and walks a
simulated clock through rounds of:

1. train and checkpoint (degraded saves included — after every one the
   :func:`~repro.chaos.invariants.check_degraded_recoverable` oracle
   re-derives the any-``m'``-further-failures guarantee from raw
   storage);
2. optionally crash a save mid-flight, leaving a torn version;
3. fail a random *survivable* subset of the live ranks — survivable is
   decided by the independent oracle, not the engine — then let the
   controller restore, request spares (pools are sampled small enough
   that some episodes exhaust them) and regroup to a shrunk shape;
4. admit provisioned spares, optionally crashing the background repair
   at one of its :data:`~repro.elastic.repair.REPAIR_CRASH_POINTS`; a
   crashed repair's ledger is checked for crash consistency and then
   resumed;
5. occasionally consult the adaptive redundancy policy at full strength.

Every episode must end at full redundancy: any still-dead ranks receive
manually provisioned machines (modelling operator intervention once the
spare pool ran dry), the last repair generation commits, the manager's
degraded window closes, and a final pure-restart restore must land on
the oracle's version with bit-exact worker states.

Every random draw flows from ``default_rng([seed, episode])`` so a
fixed seed gates CI deterministically.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.errors import RecoveryError
from repro.chaos.injection import CrashInjector, CrashPlan, InjectedCrash
from repro.chaos.invariants import (
    check_degraded_recoverable,
    check_eccheck_redundancy,
    check_repair_ledger,
    check_restored_states,
    expected_outcome,
)
from repro.checkpoint.job import TrainingJob
from repro.checkpoint.manager import CheckpointManager
from repro.core.eccheck import ECCheckConfig, ECCheckEngine
from repro.elastic import ElasticClusterController, RedundancyPolicy
from repro.elastic.repair import REPAIR_CRASH_POINTS
from repro.obs.timeseries import (
    RECONCILE_REL_TOL,
    TimeSeriesSampler,
    use_sampler,
)
from repro.parallel.strategy import ParallelismSpec
from repro.parallel.topology import ClusterSpec
from repro.sim.spares import SparePool

#: Probability knobs of one round (module-level so tests can reason
#: about coverage; the rng stream, not these values, carries the
#: determinism).
P_SAVE_CRASH = 0.35
P_FAILURE = 0.7
P_REPAIR_CRASH = 0.5
P_ADAPT = 0.3


@dataclass(frozen=True)
class ElasticConfig:
    """Campaign parameters (defaults = the CI smoke shape)."""

    episodes: int = 30
    seed: int = 0
    max_rounds: int = 3
    model: str = "gpt2-h1024-L16"
    scale: float = 5e-4
    redundancy_floor: int = 1
    #: Run each episode under a collecting tracer and attach a trace
    #: summary to the episode in ``ELASTIC_report.json``.
    trace: bool = False
    #: Sample a sim-time telemetry timeline per episode and attach it to
    #: the episode record.  Deliberately excluded from the serialized
    #: config section so a ``timeline`` run and a plain run differ only
    #: in the ``timeline`` sections themselves.
    timeline: bool = False
    timeline_period_s: float = 60.0


@dataclass
class ElasticEpisodeResult:
    """One episode's membership cycles and any invariant violations."""

    episode: int
    cycles: list[dict] = field(default_factory=list)
    violations: list[str] = field(default_factory=list)
    #: Closed degraded windows (the manager's redundancy ledger).
    redundancy_ledger: list[dict] = field(default_factory=list)
    #: Present only when the campaign ran with ``ElasticConfig.trace``.
    trace_summary: dict | None = None
    #: Present only when the campaign ran with ``ElasticConfig.timeline``.
    timeline: dict | None = None


@dataclass
class ElasticReport:
    """All episode results plus the failure x spare x crash matrix."""

    config: ElasticConfig
    episodes: list[ElasticEpisodeResult]

    @property
    def violations(self) -> list[str]:
        return [
            f"episode {e.episode}: {v}"
            for e in self.episodes
            for v in e.violations
        ]

    @property
    def cycles(self) -> list[dict]:
        return [c for e in self.episodes for c in e.cycles]

    def outcome_matrix(self) -> dict[str, dict[str, int]]:
        """``"kind/detail" -> {outcome: count}`` across all episodes."""
        matrix: dict[str, dict[str, int]] = {}
        for cycle in self.cycles:
            if cycle["kind"] == "failure":
                key = (
                    f"failure/f{cycle['num_failed']}"
                    f"/{cycle['save_crash'] or '-'}"
                )
                outcome = cycle["outcome"]
            elif cycle["kind"] == "join":
                key = f"join/{cycle['repair_crash'] or '-'}"
                outcome = "resumed" if cycle["resumed"] else "committed"
            else:
                key = cycle["kind"]
                outcome = cycle.get("outcome", "hit")
            row = matrix.setdefault(key, {})
            row[outcome] = row.get(outcome, 0) + 1
        return {key: matrix[key] for key in sorted(matrix)}

    def to_dict(self) -> dict:
        """Plain-data form, deliberately provenance-free (determinism
        tests compare two runs by equality); :meth:`to_json` adds the
        stamp."""
        return {
            "config": {
                "episodes": self.config.episodes,
                "seed": self.config.seed,
                "max_rounds": self.config.max_rounds,
                "model": self.config.model,
                "scale": self.config.scale,
                "redundancy_floor": self.config.redundancy_floor,
                "trace": self.config.trace,
            },
            "total_cycles": len(self.cycles),
            "outcome_matrix": self.outcome_matrix(),
            "violations": self.violations,
            "episodes": [
                {
                    "episode": e.episode,
                    "cycles": e.cycles,
                    "violations": e.violations,
                    "redundancy_ledger": e.redundancy_ledger,
                    **(
                        {"trace_summary": e.trace_summary}
                        if e.trace_summary is not None
                        else {}
                    ),
                    **(
                        {"timeline": e.timeline}
                        if e.timeline is not None
                        else {}
                    ),
                }
                for e in self.episodes
            ],
        }

    def to_json(self, provenance: bool = True) -> str:
        """JSON form for ``ELASTIC_report.json``, provenance-stamped."""
        payload = self.to_dict()
        if provenance:
            from repro.obs.provenance import provenance_stamp

            payload["provenance"] = provenance_stamp()
        return json.dumps(payload, indent=2, sort_keys=True)

    def render(self) -> str:
        """ASCII summary: the outcome matrix plus the violation count."""
        lines = [
            f"elastic campaign: {len(self.episodes)} episodes, "
            f"{len(self.cycles)} membership cycles, "
            f"{len(self.violations)} violations",
        ]
        for key, row in self.outcome_matrix().items():
            counts = ", ".join(
                f"{outcome}={count}" for outcome, count in sorted(row.items())
            )
            lines.append(f"  {key:<32s} {counts}")
        for violation in self.violations:
            lines.append(f"VIOLATION: {violation}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
def _build_testbed(config: ElasticConfig, episode: int):
    job = TrainingJob.create(
        model=config.model,
        cluster=ClusterSpec(num_nodes=4, gpus_per_node=2, nodes_per_rack=2),
        strategy=ParallelismSpec(tensor_parallel=2, pipeline_parallel=4),
        scale=config.scale,
        seed=config.seed * 7919 + episode,
    )
    engine = ECCheckEngine(job, ECCheckConfig(k=2, m=2, encode_threads=2))
    return job, engine


def _sample_survivable_failure(
    engine, alive: list[int], rng: np.random.Generator
) -> set[int]:
    """A random failed-rank set the oracle still calls recoverable.

    Draws a subset of the live ranks no larger than the current parity
    budget, shrinking until the independent oracle confirms an in-memory
    restore would succeed; empty when even a single loss is fatal.
    """
    max_fail = min(engine.config.m, len(alive))
    for count in range(int(rng.integers(1, max_fail + 1)), 0, -1):
        failed = {
            int(x) for x in rng.choice(alive, size=count, replace=False)
        }
        kind, _ = expected_outcome(engine, failed)
        if kind == "memory":
            return failed
    return set()


def _run_episode_impl(
    episode: int, config: ElasticConfig, sampler: TimeSeriesSampler | None = None
) -> ElasticEpisodeResult:
    rng = np.random.default_rng([config.seed, episode])
    result = ElasticEpisodeResult(episode=episode)
    job, engine = _build_testbed(config, episode)
    manager = CheckpointManager(job, engine, interval=1)
    pool = SparePool(
        size=int(rng.integers(0, 4)),
        median_delay_s=float(rng.uniform(60.0, 300.0)),
        sigma=0.5,
    )
    policy = RedundancyPolicy(
        repair_window_s=float(rng.choice([300.0, 900.0, 1800.0])),
        max_m=3,
    )
    controller = ElasticClusterController(
        manager,
        pool,
        policy=policy,
        redundancy_floor=config.redundancy_floor,
        rng=rng,
    )
    t = 0.0
    if sampler is not None:
        # Manual-clock mode: the campaign's own ``t`` drives the grid.
        # Probes only read controller/pool state; eager degraded-window
        # edges arrive through the manager's transition marks.
        sampler.register_probe(
            "alive_ranks", lambda _t: float(len(controller.membership.alive))
        )
        sampler.register_probe(
            "dead_ranks", lambda _t: float(len(controller.membership.dead))
        )
        sampler.register_probe(
            "pool_remaining", lambda _t: float(pool.remaining)
        )
        sampler.register_probe(
            "parity_m", lambda _t: float(engine.config.m)
        )
        sampler.watch_tenant(
            "job",
            manager,
            {
                "degraded": lambda _t: 1.0 if manager.degraded else 0.0,
                "iteration": lambda _t: float(job.iteration),
            },
            t=0.0,
        )
        sampler.sample(0.0, "baseline")

    def clock(dt: float) -> None:
        nonlocal t
        t += dt
        if sampler is not None:
            sampler.advance(t)

    version_states: dict[int, dict] = {}
    version_iteration: dict[int, int] = {}
    torn_versions: set[int] = set()
    drained_saves = 0

    def drain_reports() -> None:
        nonlocal drained_saves
        fresh = manager.stats.save_reports[drained_saves:]
        drained_saves = len(manager.stats.save_reports)
        for report in fresh:
            version_states.setdefault(report.version, job.snapshot_states())
            version_iteration.setdefault(
                report.version,
                manager._checkpoint_iteration_of_version[report.version],
            )

    def check_recovery(report, failed: set[int], cycle: dict) -> None:
        cycle["version"] = report.version
        if report.version in torn_versions:
            result.violations.append(
                f"restored torn version v{report.version} "
                f"(failed={sorted(failed)})"
            )
        if report.version not in version_states:
            result.violations.append(
                f"restored v{report.version}, a version no completed "
                f"save ever committed"
            )
            return
        result.violations.extend(
            check_restored_states(job, version_states[report.version])
        )
        if job.iteration != version_iteration[report.version]:
            result.violations.append(
                f"job resumed at iteration {job.iteration}, expected "
                f"{version_iteration[report.version]}"
            )

    rounds = int(rng.integers(2, config.max_rounds + 1))
    for _ in range(rounds):
        # -- train + checkpoint (degraded saves audited) ----------------
        for _ in range(int(rng.integers(1, 4))):
            clock(float(rng.uniform(20.0, 60.0)))
            if not controller.can_checkpoint:
                result.cycles.append({"kind": "blocked"})
                continue
            job.advance()
            manager.step()
            drain_reports()
            if controller.degraded:
                result.violations.extend(
                    check_degraded_recoverable(engine, engine.version)
                )

        # -- maybe crash a save mid-flight ------------------------------
        save_crash = None
        if (
            controller.can_checkpoint
            and engine.crash_points
            and rng.random() < P_SAVE_CRASH
        ):
            point = str(rng.choice(engine.crash_points))
            job.advance()
            engine.crash_injector = CrashInjector(
                CrashPlan(point=point, after=int(rng.integers(0, 3)))
            )
            try:
                manager.step()
            except InjectedCrash:
                save_crash = point
                torn_versions.add(engine.version)
            finally:
                engine.crash_injector = None
            if save_crash is None:
                drain_reports()

        # -- fail a survivable subset of live ranks ---------------------
        if version_states and rng.random() < P_FAILURE:
            failed = _sample_survivable_failure(
                engine, controller.membership.alive, rng
            )
            if failed:
                clock(float(rng.uniform(1.0, 10.0)))
                if sampler is not None:
                    sampler.note_event(t, "failure", ranks=sorted(failed))
                _, expected_version = expected_outcome(engine, failed)
                cycle = {
                    "kind": "failure",
                    "num_failed": len(failed),
                    "save_crash": save_crash,
                    "pool_remaining": pool.remaining,
                }
                try:
                    report = controller.on_failure(failed, t)
                except RecoveryError as exc:
                    cycle["outcome"] = "refused"
                    result.cycles.append(cycle)
                    result.violations.append(
                        f"refused recovery although v{expected_version} "
                        f"was recoverable (failed={sorted(failed)}): {exc}"
                    )
                    break
                except Exception as exc:  # noqa: BLE001 — leaks are findings
                    cycle["outcome"] = "engine_error"
                    result.cycles.append(cycle)
                    result.violations.append(
                        f"recovery raised {type(exc).__name__} "
                        f"(failed={sorted(failed)}): {exc}"
                    )
                    break
                cycle["outcome"] = "memory"
                result.cycles.append(cycle)
                if report.version != expected_version:
                    result.violations.append(
                        f"restored v{report.version}, oracle expected "
                        f"v{expected_version} (failed={sorted(failed)})"
                    )
                check_recovery(report, failed, cycle)

        # -- admit provisioned spares, maybe crashing the repair --------
        clock(float(rng.uniform(30.0, 400.0)))
        injector = None
        repair_crash = None
        if rng.random() < P_REPAIR_CRASH:
            repair_point = str(rng.choice(REPAIR_CRASH_POINTS))
            injector = CrashInjector(
                CrashPlan(point=repair_point, after=int(rng.integers(0, 6)))
            )
        dead_before = set(controller.membership.dead)
        try:
            joined = controller.poll_spares(t, repair_crash_injector=injector)
        except InjectedCrash:
            repair_crash = injector.plan.point
            ledger = controller.repair_ledger
            result.violations.extend(
                check_repair_ledger(ledger, engine, ledger.version)
            )
            # The crashed join already took the rank; record it, then
            # resume the interrupted generation and drain the rest.
            for rank in sorted(dead_before - controller.membership.dead):
                result.cycles.append(
                    {
                        "kind": "join",
                        "rank": rank,
                        "repair_crash": repair_crash,
                        "resumed": True,
                    }
                )
            clock(float(rng.uniform(5.0, 60.0)))
            controller.run_repair(t)
            joined = controller.poll_spares(t)
        for rank in joined:
            if sampler is not None:
                sampler.note_event(t, "spare_join", rank=rank)
            result.cycles.append(
                {
                    "kind": "join",
                    "rank": rank,
                    "repair_crash": None,
                    "resumed": False,
                }
            )

        # -- maybe consult the adaptive policy --------------------------
        if rng.random() < P_ADAPT:
            clock(1.0)
            adopted = controller.maybe_adapt(t)
            if adopted is not None:
                result.cycles.append(
                    {"kind": "adapt", "outcome": f"k{adopted[0]}m{adopted[1]}"}
                )

    # -- finalisation: every episode ends at full redundancy ------------
    while controller.membership.dead:
        # The pool ran dry (or arrivals are still in flight): model the
        # operator provisioning a machine by hand.
        clock(float(rng.uniform(30.0, 200.0)))
        remaining = controller.poll_spares(t)
        for rank in remaining:
            result.cycles.append(
                {"kind": "join", "rank": rank, "repair_crash": None,
                 "resumed": False}
            )
        if controller.membership.dead:
            rank = min(controller.membership.dead)
            controller.on_spare_join(rank, t)
            result.cycles.append(
                {"kind": "join", "rank": rank, "repair_crash": None,
                 "resumed": False}
            )
    # At guaranteed full strength, give the adaptive policy one more
    # shot — an adopted (k, m) re-encodes the latest version, and the
    # final redundancy/restore checks below must still hold on it.
    if rng.random() < 0.5:
        clock(1.0)
        adopted = controller.maybe_adapt(t)
        if adopted is not None:
            result.cycles.append(
                {"kind": "adapt", "outcome": f"k{adopted[0]}m{adopted[1]}"}
            )
    if controller.repair_ledger is not None:
        result.violations.append(
            "episode ended with an uncommitted repair ledger: "
            f"{controller.repair_ledger.progress()}"
        )
    if version_states and manager.degraded:
        result.violations.append(
            "episode ended with the degraded window still open"
        )
    expected_kind, expected_version = expected_outcome(engine, set())
    if version_states:
        if expected_kind != "memory":
            result.violations.append(
                f"no in-memory version restorable at episode end "
                f"(oracle: {expected_kind})"
            )
        else:
            result.violations.extend(
                f"final redundancy: {v}"
                for v in check_eccheck_redundancy(engine, expected_version)
            )
            # A pure process restart must land on the oracle's version
            # with bit-exact worker states.
            report = manager.on_failure(set())
            cycle = {
                "kind": "final_restore",
                "outcome": "memory",
            }
            result.cycles.append(cycle)
            if report.version != expected_version:
                result.violations.append(
                    f"final restore landed on v{report.version}, oracle "
                    f"expected v{expected_version}"
                )
            check_recovery(report, set(), cycle)
    result.redundancy_ledger = list(manager.stats.redundancy_ledger)
    if sampler is not None:
        sampler.finalize(t)
        # Self-audit: the timeline's degraded-time integral over closed
        # windows must reconstruct the manager's ledger exactly.
        integrated = sampler.tenants["job"].closed_integral_s
        ledger = sum(
            e["degraded_seconds"] for e in result.redundancy_ledger
        )
        tol = max(abs(ledger), abs(integrated)) * RECONCILE_REL_TOL + 1e-9
        if abs(ledger - integrated) > tol:
            result.violations.append(
                f"timeline degraded integral {integrated!r} != ledger "
                f"degraded_seconds {ledger!r} (tol {tol:g})"
            )
    return result


def run_elastic_episode(
    episode: int, config: ElasticConfig
) -> ElasticEpisodeResult:
    """One seeded elastic episode; traced when the config asks for it."""
    sampler = None
    if config.timeline:
        sampler = TimeSeriesSampler(period_s=config.timeline_period_s)

    def impl() -> ElasticEpisodeResult:
        if sampler is None:
            return _run_episode_impl(episode, config)
        # Installing the sampler lets the manager's degraded-window
        # transition marks land eager samples at their exact sim time.
        with use_sampler(sampler):
            return _run_episode_impl(episode, config, sampler)

    if not config.trace:
        result = impl()
    else:
        with obs.use_tracer() as tracer:
            result = impl()
        result.trace_summary = obs.summarize(tracer)
    if sampler is not None:
        result.timeline = sampler.timeline_dict()
    return result


def run_elastic_campaign(config: ElasticConfig | None = None) -> ElasticReport:
    """Run ``config.episodes`` elastic episodes."""
    config = config or ElasticConfig()
    episodes = [
        run_elastic_episode(episode, config)
        for episode in range(config.episodes)
    ]
    return ElasticReport(config=config, episodes=episodes)

"""Tier-loss chaos campaign: seeded memory-wipe / disk-loss episodes.

The base campaign (:mod:`repro.chaos.campaign`) samples node failures
against engines whose only durable fallback is remote storage.  This
campaign targets the *tier stack*: an ECCheck engine runs under a
:class:`~repro.checkpoint.tiering.TierPolicy` so cold versions demote to
the local-disk tier, then episodes lose whole tiers:

* ``memory_tier_loss`` — every node power-cycles at once.  All host
  memory is gone; a correct engine recovers bit-exact from the disk tier
  (the headline invariant this campaign exists to check).
* ``partial`` — a strict subset of nodes fails; memory recovery should
  still win when enough chunks survive.
* ``disk_rot`` — a stored disk chunk packet silently rots, then the
  memory tier is lost; the digest walk must skip the torn disk version.
* ``disk_replacement`` — one machine is swapped (its disk arrives
  empty), then the memory tier is lost; versions that straddled the
  replaced disk are unrecoverable from disk.
* ``none`` — a pure process restart with no tier loss.

Every cycle is judged by the independent
:func:`~repro.chaos.invariants.expected_outcome` oracle (which re-derives
memory- and disk-tier recoverability from raw store contents), restored
states must be bit-identical to the committed bytes, and the byte-flow
ledger must balance: demoted bytes equal the demote reports' sum, disk
restores read back what promotion copied.  With ``trace`` enabled the
whole episode runs under a collecting tracer and per-tier phase totals
are reconciled against the demotion/recovery report breakdowns at 1e-9
relative tolerance.

Determinism matches the base campaign: every draw flows from
``default_rng([seed, episode])``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.errors import RecoveryError
from repro.chaos.injection import CrashInjector, CrashPlan, InjectedCrash
from repro.chaos.invariants import (
    check_redundancy,
    check_restored_states,
    expected_outcome,
)
from repro.checkpoint.job import TrainingJob
from repro.checkpoint.manager import CheckpointManager
from repro.checkpoint.tiering import TierPolicy
from repro.core.eccheck import ECCheckConfig, ECCheckEngine
from repro.core.integrity import corrupt_buffer
from repro.obs.timeseries import TimeSeriesSampler
from repro.obs.trace_io import crosscheck_totals, phase_totals
from repro.parallel.strategy import ParallelismSpec
from repro.parallel.topology import ClusterSpec

P_CRASH = 0.4

SCENARIOS = (
    "none",
    "partial",
    "memory_tier_loss",
    "disk_rot",
    "disk_replacement",
)
SCENARIO_WEIGHTS = (0.10, 0.20, 0.40, 0.15, 0.15)

#: Reconciliation tolerance for traced-vs-reported phase totals.
REL_TOL = 1e-9


@dataclass(frozen=True)
class TierChaosConfig:
    """Campaign parameters (defaults = the CI tier-smoke shape)."""

    episodes: int = 20
    seed: int = 0
    max_rounds: int = 3
    model: str = "gpt2-h1024-L16"
    scale: float = 5e-4
    #: Disk-tier retention depth handed to the :class:`TierPolicy`.
    disk_versions: int = 8
    #: Run each episode under a collecting tracer, reconcile per-tier
    #: phase totals against report breakdowns at :data:`REL_TOL`, and
    #: attach a trace summary to the episode.
    trace: bool = False
    #: Attach a per-episode telemetry timeline sampled against a clock
    #: derived from save/recovery durations.  Deliberately excluded from
    #: the serialized config section so a ``timeline`` run and a plain
    #: run differ only in the ``timeline`` sections.
    timeline: bool = False
    timeline_period_s: float = 60.0


@dataclass
class TierEpisodeResult:
    """One episode's recovery cycles and any invariant violations."""

    episode: int
    cycles: list[dict] = field(default_factory=list)
    violations: list[str] = field(default_factory=list)
    #: Tier-stack accounting for the episode: demotions, evictions,
    #: bytes to/from each tier.
    tier_flow: dict = field(default_factory=dict)
    #: Present only when the campaign ran with ``TierChaosConfig.trace``.
    trace_summary: dict | None = None
    #: Present only when the campaign ran with ``TierChaosConfig.timeline``.
    timeline: dict | None = None


@dataclass
class TierCampaignReport:
    """All episode results plus tier-level aggregates."""

    config: TierChaosConfig
    episodes: list[TierEpisodeResult]

    @property
    def violations(self) -> list[str]:
        return [
            f"episode {e.episode}: {v}"
            for e in self.episodes
            for v in e.violations
        ]

    @property
    def cycles(self) -> list[dict]:
        return [c for e in self.episodes for c in e.cycles]

    def outcome_matrix(self) -> dict[str, dict[str, int]]:
        """``"scenario/crash" -> {outcome: count}``."""
        matrix: dict[str, dict[str, int]] = {}
        for cycle in self.cycles:
            key = (
                f"{cycle['scenario']}"
                f"/{cycle['crash_point'] or '-'}"
            )
            row = matrix.setdefault(key, {})
            row[cycle["outcome"]] = row.get(cycle["outcome"], 0) + 1
        return {key: matrix[key] for key in sorted(matrix)}

    def recovery_time_by_tier(self) -> dict[str, dict[str, float]]:
        """Per-tier recovery-time statistics — the tier/latency curve.

        Memory restores should be fastest, disk pays the promotion read,
        remote pays the thin shared pipe; this table is the campaign's
        empirical check of that ordering.
        """
        samples: dict[str, list[float]] = {}
        for cycle in self.cycles:
            tier = cycle.get("tier")
            if tier is None or "recovery_s" not in cycle:
                continue
            samples.setdefault(tier, []).append(cycle["recovery_s"])
        return {
            tier: {
                "count": len(values),
                "mean_s": sum(values) / len(values),
                "max_s": max(values),
                "min_s": min(values),
            }
            for tier, values in sorted(samples.items())
        }

    def byte_flow(self) -> dict[str, int]:
        """Campaign-wide per-tier byte flow (the ledger, summed)."""
        totals = {
            "bytes_to_disk": 0,
            "bytes_from_disk": 0,
            "bytes_from_remote": 0,
            "disk_bytes_evicted": 0,
        }
        for episode in self.episodes:
            for key in totals:
                totals[key] += episode.tier_flow.get(key, 0)
        return totals

    def to_dict(self) -> dict:
        """Plain-data form; provenance-free so identical campaigns
        compare equal (see :meth:`to_json`)."""
        return {
            "config": {
                "episodes": self.config.episodes,
                "seed": self.config.seed,
                "max_rounds": self.config.max_rounds,
                "model": self.config.model,
                "scale": self.config.scale,
                "disk_versions": self.config.disk_versions,
                "trace": self.config.trace,
            },
            "total_recovery_cycles": len(self.cycles),
            "outcome_matrix": self.outcome_matrix(),
            "recovery_time_by_tier": self.recovery_time_by_tier(),
            "byte_flow": self.byte_flow(),
            "violations": self.violations,
            "episodes": [
                {
                    "episode": e.episode,
                    "cycles": e.cycles,
                    "violations": e.violations,
                    "tier_flow": e.tier_flow,
                    **(
                        {"trace_summary": e.trace_summary}
                        if e.trace_summary is not None
                        else {}
                    ),
                    **(
                        {"timeline": e.timeline}
                        if e.timeline is not None
                        else {}
                    ),
                }
                for e in self.episodes
            ],
        }

    def to_json(self, provenance: bool = True) -> str:
        """JSON form for ``TIER_report.json``, provenance-stamped."""
        payload = self.to_dict()
        if provenance:
            from repro.obs.provenance import provenance_stamp

            payload["provenance"] = provenance_stamp()
        return json.dumps(payload, indent=2, sort_keys=True)

    def render(self) -> str:
        """ASCII summary: outcomes, tier latency curve, byte flow."""
        lines = [
            f"tier campaign: {len(self.episodes)} episodes, "
            f"{len(self.cycles)} recovery cycles, "
            f"{len(self.violations)} violations",
            f"{'scenario / crash point':<34s} "
            f"{'memory':>7s} {'disk':>5s} {'backup':>7s} "
            f"{'refused':>8s} {'error':>6s}",
        ]
        for key, row in self.outcome_matrix().items():
            lines.append(
                f"{key:<34s} {row.get('memory', 0):>7d} "
                f"{row.get('disk', 0):>5d} "
                f"{row.get('backup', 0):>7d} {row.get('refused', 0):>8d} "
                f"{row.get('engine_error', 0):>6d}"
            )
        lines.append("recovery time by tier:")
        for tier, stats in self.recovery_time_by_tier().items():
            lines.append(
                f"  {tier:<8s} n={stats['count']:<4d} "
                f"mean={stats['mean_s']:.3f}s max={stats['max_s']:.3f}s"
            )
        flow = self.byte_flow()
        lines.append(
            "byte flow: "
            f"to_disk={flow['bytes_to_disk']} "
            f"from_disk={flow['bytes_from_disk']} "
            f"from_remote={flow['bytes_from_remote']} "
            f"evicted={flow['disk_bytes_evicted']}"
        )
        for violation in self.violations:
            lines.append(f"VIOLATION: {violation}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
def _build(config: TierChaosConfig, episode: int, rng: np.random.Generator):
    job = TrainingJob.create(
        model=config.model,
        cluster=ClusterSpec(num_nodes=4, gpus_per_node=2, nodes_per_rack=2),
        strategy=ParallelismSpec(tensor_parallel=2, pipeline_parallel=4),
        scale=config.scale,
        seed=config.seed * 7919 + episode,
    )
    engine = ECCheckEngine(job, ECCheckConfig(k=2, m=2, encode_threads=2))
    policy = TierPolicy(
        memory_versions=int(rng.integers(1, 3)),
        disk_versions=config.disk_versions,
    )
    manager = CheckpointManager(
        job,
        engine,
        interval=1,
        remote_backup_every=int(rng.choice([0, 3])),
        tier_policy=policy,
    )
    return job, engine, manager


def _corrupt_random_disk_chunk(engine, rng: np.random.Generator) -> str | None:
    """Flip bits in one stored *disk* chunk packet; returns a description."""
    candidates = []
    for node in range(engine.job.cluster.num_nodes):
        for key in engine.disk.keys(node):
            if isinstance(key, tuple) and key[0] == "chunk":
                candidates.append((node, key))
    if not candidates:
        return None
    candidates.sort(key=repr)
    node, key = candidates[int(rng.integers(len(candidates)))]
    payload = engine.disk.get(node, key)
    corrupt_buffer(
        payload,
        byte_index=int(rng.integers(payload.size)),
        mask=int(rng.integers(1, 256)),
    )
    return f"node {node} {key}"


# ----------------------------------------------------------------------
def run_tier_episode(
    episode: int, config: TierChaosConfig
) -> TierEpisodeResult:
    """One seeded tier-loss episode (traced when ``config.trace``)."""
    sampler = None
    if config.timeline:
        sampler = TimeSeriesSampler(period_s=config.timeline_period_s)
    if not config.trace:
        result = _run_tier_episode_impl(
            episode, config, tracer=None, sampler=sampler
        )
    else:
        with obs.use_tracer() as tracer:
            result = _run_tier_episode_impl(
                episode, config, tracer=tracer, sampler=sampler
            )
        result.trace_summary = obs.summarize(tracer)
    if sampler is not None:
        result.timeline = sampler.timeline_dict()
    return result


def _run_tier_episode_impl(
    episode: int,
    config: TierChaosConfig,
    tracer,
    sampler: TimeSeriesSampler | None = None,
) -> TierEpisodeResult:
    rng = np.random.default_rng([config.seed, episode])
    result = TierEpisodeResult(episode=episode)
    job, engine, manager = _build(config, episode, rng)

    version_states: dict[int, dict] = {}
    version_iteration: dict[int, int] = {}
    torn_versions: set[int] = set()
    drained_saves = 0
    drained_backups = 0
    restore_breakdowns: list[dict] = []
    t = 0.0
    if sampler is not None:
        # Derived clock, as in the base chaos campaign; the probes watch
        # the tier stack's byte flow alongside the recovery counters.
        sampler.register_probe(
            "checkpoints", lambda _t: float(manager.stats.checkpoints)
        )
        sampler.register_probe(
            "recoveries", lambda _t: float(manager.stats.recoveries)
        )
        sampler.register_probe(
            "demotions", lambda _t: float(manager.stats.demotions)
        )
        sampler.register_probe(
            "evictions", lambda _t: float(manager.stats.evictions)
        )
        sampler.register_probe(
            "bytes_to_disk", lambda _t: float(manager.stats.bytes_to_disk)
        )
        sampler.register_probe(
            "disk_bytes_evicted",
            lambda _t: float(manager.stats.disk_bytes_evicted),
        )
        sampler.sample(0.0, "baseline")

    def drain_reports() -> None:
        nonlocal drained_saves, drained_backups, t
        fresh = (
            manager.stats.save_reports[drained_saves:]
            + manager.stats.backup_reports[drained_backups:]
        )
        drained_saves = len(manager.stats.save_reports)
        drained_backups = len(manager.stats.backup_reports)
        for report in fresh:
            t += float(getattr(report, "checkpoint_time", 0.0))
            version_states.setdefault(report.version, job.snapshot_states())
            version_iteration.setdefault(
                report.version,
                manager._checkpoint_iteration_of_version[report.version],
            )
        if sampler is not None and fresh:
            sampler.advance(t)

    rounds = int(rng.integers(1, config.max_rounds + 1))
    for _ in range(rounds):
        # -- train + checkpoint (tier policy demotes after each save) ----
        for _ in range(int(rng.integers(2, 5))):
            job.advance()
            manager.step()
            drain_reports()

        # -- maybe crash a save mid-flight ------------------------------
        crash_point = None
        if rng.random() < P_CRASH:
            point = str(rng.choice(engine.crash_points))
            plan = CrashPlan(point=point, after=int(rng.integers(0, 3)))
            job.advance()
            engine.crash_injector = CrashInjector(plan)
            try:
                manager.step()
            except InjectedCrash:
                crash_point = point
                torn_versions.add(engine.version)
            finally:
                engine.crash_injector = None
            if crash_point is None:
                drain_reports()

        # -- pick a tier-loss scenario ----------------------------------
        scenario = str(rng.choice(SCENARIOS, p=SCENARIO_WEIGHTS))
        n = job.cluster.num_nodes
        corrupted = None
        replaced_disk = None
        if scenario == "none":
            failed: set[int] = set()
        elif scenario == "partial":
            size = int(rng.integers(1, n))
            failed = {int(x) for x in rng.choice(n, size=size, replace=False)}
        elif scenario == "memory_tier_loss":
            failed = set(range(n))  # full cluster power-cycle
        elif scenario == "disk_rot":
            corrupted = _corrupt_random_disk_chunk(engine, rng)
            failed = set(range(n))
        elif scenario == "disk_replacement":
            replaced_disk = int(rng.integers(n))
            engine.on_node_replaced(replaced_disk)
            failed = set(range(n))
        else:  # pragma: no cover — scenario tuple and dispatch in sync
            raise AssertionError(scenario)

        if not failed and crash_point is None:
            continue  # nothing happened this round
        if sampler is not None:
            sampler.note_event(
                t, "tier_loss", scenario=scenario, ranks=sorted(failed)
            )

        # -- oracle, then recover ---------------------------------------
        expected_kind, expected_version = expected_outcome(engine, failed)
        at_iteration = job.iteration
        lost_before = manager.stats.iterations_lost
        cycle = {
            "scenario": scenario,
            "crash_point": crash_point,
            "num_failed": len(failed),
            "disk_corrupted": corrupted is not None,
            "disk_replaced": replaced_disk,
            "expected": expected_kind,
        }
        try:
            report = manager.on_failure(failed)
        except RecoveryError as exc:
            cycle["outcome"] = "refused"
            result.cycles.append(cycle)
            if expected_kind != "refused":
                result.violations.append(
                    f"refused recovery although v{expected_version} was "
                    f"recoverable from {expected_kind} "
                    f"(scenario={scenario}): {exc}"
                )
            break  # the job is down; the episode ends here
        except Exception as exc:  # noqa: BLE001 — any leak is a finding
            cycle["outcome"] = "engine_error"
            result.cycles.append(cycle)
            result.violations.append(
                f"recovery raised {type(exc).__name__} instead of "
                f"recovering or refusing cleanly (scenario={scenario}): {exc}"
            )
            break

        tier = report.tier
        outcome = "backup" if tier == "remote" else tier
        cycle["outcome"] = outcome
        cycle["tier"] = tier
        cycle["version"] = report.version
        cycle["recovery_s"] = report.recovery_time
        cycle["bytes_from_disk"] = report.bytes_from_disk
        cycle["bytes_from_remote"] = report.bytes_from_remote
        result.cycles.append(cycle)
        restore_breakdowns.append(report.breakdown)
        if sampler is not None:
            t += float(report.recovery_time)
            sampler.advance(t)

        if expected_kind == "refused":
            result.violations.append(
                f"engine restored v{report.version} although the oracle "
                f"found no recoverable version (scenario={scenario})"
            )
            break
        if outcome != expected_kind or report.version != expected_version:
            result.violations.append(
                f"restored v{report.version} from {outcome}, expected "
                f"v{expected_version} from {expected_kind} "
                f"(scenario={scenario}, failed={sorted(failed)})"
            )
        if report.version in torn_versions:
            result.violations.append(
                f"restored torn version v{report.version} "
                f"(scenario={scenario}, crash={crash_point})"
            )
        # -- the byte-flow ledger must balance per outcome ---------------
        if outcome == "disk" and report.bytes_from_disk <= 0:
            result.violations.append(
                f"disk restore of v{report.version} read 0 bytes from disk"
            )
        if outcome == "disk" and "promote_disk_read" not in report.breakdown:
            result.violations.append(
                f"disk restore of v{report.version} has no promote phase "
                "in its breakdown"
            )
        if outcome == "memory" and report.bytes_from_disk:
            result.violations.append(
                f"memory restore of v{report.version} claims "
                f"{report.bytes_from_disk} disk bytes"
            )
        if report.version not in version_states:
            result.violations.append(
                f"restored v{report.version}, a version no completed save "
                f"ever committed"
            )
        else:
            result.violations.extend(
                check_restored_states(job, version_states[report.version])
            )
            result.violations.extend(
                check_redundancy(
                    engine, report.version, from_backup=outcome == "backup"
                )
            )
            expected_lost = max(
                0, at_iteration - version_iteration[report.version]
            )
            actual_lost = manager.stats.iterations_lost - lost_before
            if actual_lost != expected_lost:
                result.violations.append(
                    f"iterations_lost accounted {actual_lost}, expected "
                    f"{expected_lost}"
                )

    # -- episode-level ledger: demoted bytes must equal the reports ------
    stats = manager.stats
    reported_to_disk = sum(r.bytes_to_disk for r in stats.demote_reports)
    if stats.bytes_to_disk != reported_to_disk:
        result.violations.append(
            f"bytes_to_disk ledger off: stats={stats.bytes_to_disk}, "
            f"demote reports sum to {reported_to_disk}"
        )
    result.tier_flow = {
        "demotions": stats.demotions,
        "evictions": stats.evictions,
        "skipped_demotions": stats.skipped_demotions,
        "bytes_to_disk": stats.bytes_to_disk,
        "bytes_from_disk": sum(c.get("bytes_from_disk", 0) for c in result.cycles),
        "bytes_from_remote": sum(
            c.get("bytes_from_remote", 0) for c in result.cycles
        ),
        "disk_bytes_evicted": stats.disk_bytes_evicted,
    }

    # -- traced mode: reconcile per-tier phase totals at 1e-9 ------------
    if tracer is not None:
        spans = [r for r in tracer.records() if r["type"] == "span"]
        for label, kind, breakdowns in (
            ("tier", "tier", [r.breakdown for r in stats.demote_reports]),
            ("restore", "restore", restore_breakdowns),
        ):
            problems = crosscheck_totals(
                phase_totals(spans, kind=kind), breakdowns, rel_tol=REL_TOL
            )
            result.violations.extend(
                f"traced {label} phases do not reconcile: {p}"
                for p in problems
            )
    if sampler is not None:
        sampler.finalize(t)
    return result


def run_tier_campaign(
    config: TierChaosConfig | None = None,
) -> TierCampaignReport:
    """Run ``config.episodes`` seeded tier-loss episodes."""
    config = config or TierChaosConfig()
    return TierCampaignReport(
        config=config,
        episodes=[
            run_tier_episode(episode, config)
            for episode in range(config.episodes)
        ],
    )

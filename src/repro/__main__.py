"""``python -m repro`` entry point."""

import sys

from repro.cli import main

if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Output was piped into something like `head`; exit quietly.
        sys.exit(0)

"""Exception hierarchy shared across the package.

All errors raised by ``repro`` derive from :class:`ReproError` so callers can
catch everything from this library with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class FieldError(ReproError):
    """Invalid finite-field operation (e.g. division by zero, bad word size)."""


class MatrixError(ReproError):
    """Matrix operation failed (singular matrix, shape mismatch)."""


class CodeConfigError(ReproError):
    """Erasure-code parameters are invalid (e.g. k + m exceeds field size)."""


class DecodeError(ReproError):
    """Not enough surviving chunks (or inconsistent chunks) to decode."""


class EncodeError(ReproError):
    """Encode execution failure (e.g. a crashed process-pool worker)."""


class ShardingError(ReproError):
    """Parallelism specification cannot shard the given model/cluster."""


class CheckpointError(ReproError):
    """Checkpoint engine failure (bad state, missing chunks, version skew)."""


class RecoveryError(CheckpointError):
    """Recovery is impossible for the observed failure pattern."""


class SimulationError(ReproError):
    """Discrete-event simulation misuse (time travel, unknown link, ...)."""


class SchedulingError(ReproError):
    """Communication scheduling failed (no idle slots, bad profile)."""

"""Log/antilog table construction for GF(2^w).

The tables follow the classic construction used by Jerasure: pick a primitive
polynomial for the field, enumerate powers of the generator ``x`` (element 2),
and record ``exp[i] = x^i`` together with the inverse mapping
``log[exp[i]] = i``.  Multiplication then reduces to an addition of logs
modulo ``2^w - 1``.

Only the word sizes the paper's coding stack needs are supported; Jerasure
likewise special-cases w in {8, 16, 32} and we add the small sizes used by
tests and teaching examples.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.errors import FieldError

# Primitive polynomials, expressed with the leading x^w term included, as in
# Jerasure's defaults (e.g. 0x11D = x^8 + x^4 + x^3 + x^2 + 1 for w = 8).
PRIMITIVE_POLYNOMIALS: dict[int, int] = {
    1: 0b11,          # x + 1
    2: 0b111,         # x^2 + x + 1
    4: 0b10011,       # x^4 + x + 1
    8: 0x11D,         # x^8 + x^4 + x^3 + x^2 + 1
    16: 0x1100B,      # x^16 + x^12 + x^3 + x + 1
}


@lru_cache(maxsize=None)
def build_tables(w: int) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(exp, log)`` tables for GF(2^w).

    ``exp`` has length ``2 * (2^w - 1)`` so products of two logs can be looked
    up without a modulo operation.  ``log`` has length ``2^w``; ``log[0]`` is
    a sentinel (it is never a valid input to multiplication by logs).

    Raises:
        FieldError: if ``w`` is not one of the supported word sizes.
    """
    if w not in PRIMITIVE_POLYNOMIALS:
        raise FieldError(
            f"unsupported word size w={w}; supported: {sorted(PRIMITIVE_POLYNOMIALS)}"
        )
    poly = PRIMITIVE_POLYNOMIALS[w]
    order = (1 << w) - 1
    exp = np.zeros(2 * order, dtype=np.uint32)
    log = np.zeros(1 << w, dtype=np.uint32)

    value = 1
    for i in range(order):
        exp[i] = value
        log[value] = i
        value <<= 1
        if value & (1 << w):
            value ^= poly
    # Duplicate the cycle so exp[log_a + log_b] never needs a modulo.
    exp[order : 2 * order] = exp[:order]
    # log[0] is undefined; keep 0 as the sentinel and guard in callers.
    log[0] = 0
    return exp, log


@lru_cache(maxsize=None)
def mul_table(w: int) -> np.ndarray:
    """Full multiplication table for small fields (w <= 8).

    Returns a ``(2^w, 2^w)`` uint32 array with ``table[a, b] = a * b`` in
    GF(2^w).  Used for fast vectorised products and for brute-force
    verification in tests.
    """
    if w > 8:
        raise FieldError("full multiplication tables are only built for w <= 8")
    exp, log = build_tables(w)
    size = 1 << w
    a = np.arange(size, dtype=np.uint32)
    table = np.zeros((size, size), dtype=np.uint32)
    nz = a[1:]
    # table[a, b] = exp[log[a] + log[b]] for a, b != 0.
    logs = log[nz]
    table[1:, 1:] = exp[(logs[:, None] + logs[None, :])]
    return table

"""Matrix algebra over GF(2^w).

Matrices are plain numpy ``uint32`` arrays whose entries are field elements.
These routines back the construction and inversion of erasure-coding
generator matrices; sizes are tiny (k + m rows), so clarity is preferred over
micro-optimisation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MatrixError
from repro.gf.field import GF


def _as_matrix(mat: np.ndarray) -> np.ndarray:
    mat = np.asarray(mat, dtype=np.uint32)
    if mat.ndim != 2:
        raise MatrixError(f"expected a 2-D matrix, got shape {mat.shape}")
    return mat


def gf_eye(n: int) -> np.ndarray:
    """Identity matrix of size ``n`` over any GF(2^w)."""
    return np.eye(n, dtype=np.uint32)


def gf_matmul(a: np.ndarray, b: np.ndarray, field: GF) -> np.ndarray:
    """Matrix product over GF(2^w)."""
    a = _as_matrix(a)
    b = _as_matrix(b)
    if a.shape[1] != b.shape[0]:
        raise MatrixError(f"shape mismatch: {a.shape} @ {b.shape}")
    out = np.zeros((a.shape[0], b.shape[1]), dtype=np.uint32)
    for i in range(a.shape[0]):
        # out[i, :] = XOR_j a[i, j] * b[j, :]
        row = np.zeros(b.shape[1], dtype=np.uint32)
        for j in range(a.shape[1]):
            coeff = int(a[i, j])
            if coeff == 0:
                continue
            row ^= field.mul_array(np.full(b.shape[1], coeff, dtype=np.uint32), b[j])
        out[i] = row
    return out


def gf_matvec(a: np.ndarray, v: np.ndarray, field: GF) -> np.ndarray:
    """Matrix-vector product over GF(2^w)."""
    v = np.asarray(v, dtype=np.uint32)
    if v.ndim != 1:
        raise MatrixError(f"expected a vector, got shape {v.shape}")
    return gf_matmul(a, v[:, None], field)[:, 0]


def gf_matinv(mat: np.ndarray, field: GF) -> np.ndarray:
    """Invert a square matrix over GF(2^w) by Gauss-Jordan elimination.

    Raises:
        MatrixError: if the matrix is singular or not square.
    """
    mat = _as_matrix(mat)
    n, m = mat.shape
    if n != m:
        raise MatrixError(f"cannot invert non-square matrix of shape {mat.shape}")
    work = mat.astype(np.uint32).copy()
    inv = gf_eye(n)
    for col in range(n):
        # Find a pivot.
        pivot = -1
        for row in range(col, n):
            if work[row, col] != 0:
                pivot = row
                break
        if pivot < 0:
            raise MatrixError("matrix is singular over GF(2^w)")
        if pivot != col:
            work[[col, pivot]] = work[[pivot, col]]
            inv[[col, pivot]] = inv[[pivot, col]]
        # Normalise the pivot row.
        pivot_inv = field.inv(int(work[col, col]))
        if pivot_inv != 1:
            coeff = np.full(n, pivot_inv, dtype=np.uint32)
            work[col] = field.mul_array(coeff, work[col])
            inv[col] = field.mul_array(coeff, inv[col])
        # Eliminate the column everywhere else.
        for row in range(n):
            if row == col or work[row, col] == 0:
                continue
            factor = int(work[row, col])
            coeff = np.full(n, factor, dtype=np.uint32)
            work[row] ^= field.mul_array(coeff, work[col])
            inv[row] ^= field.mul_array(coeff, inv[col])
    return inv


def gf_matrank(mat: np.ndarray, field: GF) -> int:
    """Rank of a matrix over GF(2^w)."""
    work = _as_matrix(mat).astype(np.uint32).copy()
    rows, cols = work.shape
    rank = 0
    for col in range(cols):
        pivot = -1
        for row in range(rank, rows):
            if work[row, col] != 0:
                pivot = row
                break
        if pivot < 0:
            continue
        if pivot != rank:
            work[[rank, pivot]] = work[[pivot, rank]]
        pivot_inv = field.inv(int(work[rank, col]))
        if pivot_inv != 1:
            coeff = np.full(cols, pivot_inv, dtype=np.uint32)
            work[rank] = field.mul_array(coeff, work[rank])
        for row in range(rows):
            if row == rank or work[row, col] == 0:
                continue
            factor = int(work[row, col])
            coeff = np.full(cols, factor, dtype=np.uint32)
            work[row] ^= field.mul_array(coeff, work[rank])
        rank += 1
        if rank == rows:
            break
    return rank


def is_invertible(mat: np.ndarray, field: GF) -> bool:
    """True if the square matrix has full rank over GF(2^w)."""
    mat = _as_matrix(mat)
    if mat.shape[0] != mat.shape[1]:
        return False
    return gf_matrank(mat, field) == mat.shape[0]

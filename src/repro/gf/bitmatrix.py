"""GF(2) bitmatrix projection of GF(2^w) matrices.

Cauchy Reed-Solomon coding (the scheme ECCheck adopts) rewrites every field
multiplication as a small binary matrix acting on the bit-decomposition of a
word.  A field element ``e`` becomes a ``w x w`` binary matrix ``B(e)`` whose
``j``-th column holds the bits of ``e * x^j`` (where ``x = 2`` is the field
generator); a full ``rows x cols`` coding matrix becomes a
``rows*w x cols*w`` binary matrix.  Multiplication by the bitmatrix is then a
pure XOR computation — the property that makes CRS fast on CPUs.

Bitmatrices here are numpy uint8 arrays containing 0/1.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MatrixError
from repro.gf.field import GF


# All w x w element bitmatrices of a field, built once per word size and
# fancy-indexed afterwards (bitmatrix expansion sits on the schedule-compile
# and decode paths, where it used to dominate with per-element Python loops).
_ELEMENT_TABLES: dict[int, np.ndarray] = {}


def element_bitmatrix_table(field: GF) -> np.ndarray:
    """A ``(2^w, w, w)`` table: entry ``e`` is the bitmatrix of ``e``.

    Built lazily, once per field, by rotating one vectorised column at a
    time: column ``j`` of every element's matrix holds the bits of
    ``e * 2^j``, so ``w`` ``mul_array`` passes over all ``2^w`` elements
    produce the whole table.
    """
    table = _ELEMENT_TABLES.get(field.w)
    if table is None:
        w = field.w
        table = np.zeros((field.size, w, w), dtype=np.uint8)
        col = np.arange(field.size, dtype=np.uint32)  # e * 2^0
        two = np.full(field.size, 2, dtype=np.uint32)
        shifts = np.arange(w, dtype=np.uint32)
        for j in range(w):
            table[:, :, j] = (col[:, None] >> shifts[None, :]) & 1
            if j + 1 < w:  # GF(2) has no element 2; skip the dead last pass
                col = field.mul_array(col, two)
        table.setflags(write=False)
        _ELEMENT_TABLES[field.w] = table
    return table


def bitmatrix_from_element(e: int, field: GF) -> np.ndarray:
    """The ``w x w`` binary matrix representing multiplication by ``e``.

    Column ``j`` contains the bits (LSB first) of ``e * 2^j`` in GF(2^w).
    ``B(e) @ bits(v) == bits(e * v)`` over GF(2) for every field element
    ``v``.
    """
    if not 0 <= e < field.size:
        raise MatrixError(f"element {e} out of range for GF(2^{field.w})")
    return element_bitmatrix_table(field)[e].copy()


def bitmatrix_from_matrix(mat: np.ndarray, field: GF) -> np.ndarray:
    """Expand a matrix of field elements into its GF(2) bitmatrix."""
    mat = np.asarray(mat, dtype=np.uint32)
    if mat.ndim != 2:
        raise MatrixError(f"expected a 2-D matrix, got shape {mat.shape}")
    rows, cols = mat.shape
    w = field.w
    # (rows, cols, w, w) gather, then interleave the bit axes into place.
    expanded = element_bitmatrix_table(field)[mat]
    return np.ascontiguousarray(
        expanded.transpose(0, 2, 1, 3).reshape(rows * w, cols * w)
    )


def bitmatrix_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Binary matrix product over GF(2).

    Row ``i`` of the product is the XOR of the rows of ``b`` selected by
    row ``i`` of ``a`` — computed with boolean XOR-reduction, so there is
    no integer product matrix to overflow and no ``% 2`` pass.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise MatrixError(f"shape mismatch: {a.shape} @ {b.shape}")
    a_rows = a != 0
    b_bool = b != 0
    out = np.zeros((a.shape[0], b.shape[1]), dtype=np.uint8)
    for i in range(a.shape[0]):
        selected = b_bool[a_rows[i]]
        if selected.shape[0]:
            out[i] = np.bitwise_xor.reduce(selected, axis=0)
    return out


def bitmatrix_rank(mat: np.ndarray) -> int:
    """Rank over GF(2) via elimination."""
    work = np.asarray(mat, dtype=np.uint8).copy()
    rows, cols = work.shape
    rank = 0
    for col in range(cols):
        pivot = -1
        for row in range(rank, rows):
            if work[row, col]:
                pivot = row
                break
        if pivot < 0:
            continue
        if pivot != rank:
            work[[rank, pivot]] = work[[pivot, rank]]
        for row in range(rows):
            if row != rank and work[row, col]:
                work[row] ^= work[rank]
        rank += 1
        if rank == rows:
            break
    return rank


def bitmatrix_invert(mat: np.ndarray) -> np.ndarray:
    """Invert a square binary matrix over GF(2).

    Raises:
        MatrixError: if the matrix is singular or not square.
    """
    mat = np.asarray(mat, dtype=np.uint8)
    n, m = mat.shape
    if n != m:
        raise MatrixError(f"cannot invert non-square matrix of shape {mat.shape}")
    work = mat.copy()
    inv = np.eye(n, dtype=np.uint8)
    for col in range(n):
        pivot = -1
        for row in range(col, n):
            if work[row, col]:
                pivot = row
                break
        if pivot < 0:
            raise MatrixError("bitmatrix is singular over GF(2)")
        if pivot != col:
            work[[col, pivot]] = work[[pivot, col]]
            inv[[col, pivot]] = inv[[pivot, col]]
        for row in range(n):
            if row != col and work[row, col]:
                work[row] ^= work[col]
                inv[row] ^= inv[col]
    return inv

"""GF(2) bitmatrix projection of GF(2^w) matrices.

Cauchy Reed-Solomon coding (the scheme ECCheck adopts) rewrites every field
multiplication as a small binary matrix acting on the bit-decomposition of a
word.  A field element ``e`` becomes a ``w x w`` binary matrix ``B(e)`` whose
``j``-th column holds the bits of ``e * x^j`` (where ``x = 2`` is the field
generator); a full ``rows x cols`` coding matrix becomes a
``rows*w x cols*w`` binary matrix.  Multiplication by the bitmatrix is then a
pure XOR computation — the property that makes CRS fast on CPUs.

Bitmatrices here are numpy uint8 arrays containing 0/1.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MatrixError
from repro.gf.field import GF


def bitmatrix_from_element(e: int, field: GF) -> np.ndarray:
    """The ``w x w`` binary matrix representing multiplication by ``e``.

    Column ``j`` contains the bits (LSB first) of ``e * 2^j`` in GF(2^w).
    ``B(e) @ bits(v) == bits(e * v)`` over GF(2) for every field element
    ``v``.
    """
    w = field.w
    out = np.zeros((w, w), dtype=np.uint8)
    value = e
    for j in range(w):
        for i in range(w):
            out[i, j] = (value >> i) & 1
        value = field.mul(value, 2)
    return out


def bitmatrix_from_matrix(mat: np.ndarray, field: GF) -> np.ndarray:
    """Expand a matrix of field elements into its GF(2) bitmatrix."""
    mat = np.asarray(mat, dtype=np.uint32)
    if mat.ndim != 2:
        raise MatrixError(f"expected a 2-D matrix, got shape {mat.shape}")
    rows, cols = mat.shape
    w = field.w
    out = np.zeros((rows * w, cols * w), dtype=np.uint8)
    for i in range(rows):
        for j in range(cols):
            out[i * w : (i + 1) * w, j * w : (j + 1) * w] = bitmatrix_from_element(
                int(mat[i, j]), field
            )
    return out


def bitmatrix_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Binary matrix product over GF(2)."""
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    if a.shape[1] != b.shape[0]:
        raise MatrixError(f"shape mismatch: {a.shape} @ {b.shape}")
    return (a.astype(np.uint32) @ b.astype(np.uint32) % 2).astype(np.uint8)


def bitmatrix_rank(mat: np.ndarray) -> int:
    """Rank over GF(2) via elimination."""
    work = np.asarray(mat, dtype=np.uint8).copy()
    rows, cols = work.shape
    rank = 0
    for col in range(cols):
        pivot = -1
        for row in range(rank, rows):
            if work[row, col]:
                pivot = row
                break
        if pivot < 0:
            continue
        if pivot != rank:
            work[[rank, pivot]] = work[[pivot, rank]]
        for row in range(rows):
            if row != rank and work[row, col]:
                work[row] ^= work[rank]
        rank += 1
        if rank == rows:
            break
    return rank


def bitmatrix_invert(mat: np.ndarray) -> np.ndarray:
    """Invert a square binary matrix over GF(2).

    Raises:
        MatrixError: if the matrix is singular or not square.
    """
    mat = np.asarray(mat, dtype=np.uint8)
    n, m = mat.shape
    if n != m:
        raise MatrixError(f"cannot invert non-square matrix of shape {mat.shape}")
    work = mat.copy()
    inv = np.eye(n, dtype=np.uint8)
    for col in range(n):
        pivot = -1
        for row in range(col, n):
            if work[row, col]:
                pivot = row
                break
        if pivot < 0:
            raise MatrixError("bitmatrix is singular over GF(2)")
        if pivot != col:
            work[[col, pivot]] = work[[pivot, col]]
            inv[[col, pivot]] = inv[[pivot, col]]
        for row in range(n):
            if row != col and work[row, col]:
                work[row] ^= work[col]
                inv[row] ^= inv[col]
    return inv

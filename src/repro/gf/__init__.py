"""Finite-field arithmetic over GF(2^w) and GF(2) bitmatrices.

This subpackage is the mathematical foundation of the erasure codes in
``repro.ec``.  It provides:

* :class:`~repro.gf.field.GF` — scalar and numpy-vectorised arithmetic over
  GF(2^w) for w in {1, 2, 4, 8, 16}, built on log/antilog tables
  (:mod:`repro.gf.tables`).
* :mod:`repro.gf.matrix` — Gaussian elimination, inversion, rank and
  matrix products over GF(2^w).
* :mod:`repro.gf.bitmatrix` — the GF(2) "bitmatrix" projection used by
  Cauchy Reed-Solomon codes, which turns every field multiplication into a
  sequence of XORs (the property ECCheck exploits for cheap CPU encoding).
"""

from repro.gf.field import GF, SUPPORTED_WORD_SIZES
from repro.gf.matrix import (
    gf_eye,
    gf_matinv,
    gf_matmul,
    gf_matrank,
    gf_matvec,
    is_invertible,
)
from repro.gf.bitmatrix import (
    bitmatrix_from_element,
    bitmatrix_from_matrix,
    bitmatrix_invert,
    bitmatrix_matmul,
    bitmatrix_rank,
)

__all__ = [
    "GF",
    "SUPPORTED_WORD_SIZES",
    "gf_eye",
    "gf_matinv",
    "gf_matmul",
    "gf_matrank",
    "gf_matvec",
    "is_invertible",
    "bitmatrix_from_element",
    "bitmatrix_from_matrix",
    "bitmatrix_invert",
    "bitmatrix_matmul",
    "bitmatrix_rank",
]

"""Scalar and vectorised arithmetic over GF(2^w).

:class:`GF` wraps the log/antilog tables from :mod:`repro.gf.tables` with a
clean API.  Two kinds of operations are exposed:

* scalar operations on Python ints (``mul``, ``div``, ``inv``, ``pow``) used
  when building and inverting small coding matrices, and
* region operations on numpy byte buffers (``mul_region``,
  ``mul_region_into``) used on the hot encoding path, where a single field
  constant multiplies an entire packet.

Region operations use per-constant lookup tables: for w = 8 a 256-entry
table; for w = 16 a pair of 256-entry tables (the product distributes over
the high and low bytes of each 16-bit word); for w <= 4 values are packed one
per byte.  This mirrors how CPU erasure-coding libraries such as Jerasure
implement ``galois_w08_region_multiply``.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.errors import FieldError
from repro.gf.tables import PRIMITIVE_POLYNOMIALS, build_tables

SUPPORTED_WORD_SIZES: tuple[int, ...] = tuple(sorted(PRIMITIVE_POLYNOMIALS))


class GF:
    """Arithmetic in the finite field GF(2^w).

    Instances are cached per word size (``GF(8) is GF(8)``), so construction
    is cheap to repeat.

    Example:
        >>> f = GF(8)
        >>> f.mul(3, 7)
        9
        >>> f.mul(f.inv(5), 5)
        1
    """

    _instances: dict[int, "GF"] = {}

    def __new__(cls, w: int) -> "GF":
        if w not in PRIMITIVE_POLYNOMIALS:
            raise FieldError(
                f"unsupported word size w={w}; supported: {list(SUPPORTED_WORD_SIZES)}"
            )
        if w not in cls._instances:
            instance = super().__new__(cls)
            instance._init(w)
            cls._instances[w] = instance
        return cls._instances[w]

    def _init(self, w: int) -> None:
        self.w = w
        self.size = 1 << w
        self.order = self.size - 1
        self.exp, self.log = build_tables(w)

    # ------------------------------------------------------------------
    # Scalar operations
    # ------------------------------------------------------------------
    def _check(self, *values: int) -> None:
        for v in values:
            if not 0 <= v < self.size:
                raise FieldError(f"value {v} out of range for GF(2^{self.w})")

    def add(self, a: int, b: int) -> int:
        """Field addition (= subtraction = XOR in characteristic 2)."""
        self._check(a, b)
        return a ^ b

    sub = add

    def mul(self, a: int, b: int) -> int:
        """Field multiplication via log/antilog tables."""
        self._check(a, b)
        if a == 0 or b == 0:
            return 0
        return int(self.exp[int(self.log[a]) + int(self.log[b])])

    def div(self, a: int, b: int) -> int:
        """Field division ``a / b``.

        Raises:
            FieldError: if ``b`` is zero.
        """
        self._check(a, b)
        if b == 0:
            raise FieldError("division by zero in GF(2^w)")
        if a == 0:
            return 0
        return int(self.exp[int(self.log[a]) - int(self.log[b]) + self.order])

    def inv(self, a: int) -> int:
        """Multiplicative inverse of ``a``.

        Raises:
            FieldError: if ``a`` is zero.
        """
        self._check(a)
        if a == 0:
            raise FieldError("zero has no multiplicative inverse")
        return int(self.exp[self.order - int(self.log[a])])

    def pow(self, a: int, e: int) -> int:
        """Raise ``a`` to integer power ``e`` (``e`` may be negative)."""
        self._check(a)
        if a == 0:
            if e == 0:
                return 1
            if e < 0:
                raise FieldError("zero has no negative powers")
            return 0
        la = int(self.log[a]) * e
        return int(self.exp[la % self.order])

    # ------------------------------------------------------------------
    # Vectorised operations on arrays of field elements
    # ------------------------------------------------------------------
    def mul_array(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Element-wise product of two arrays of field elements."""
        a = np.asarray(a, dtype=np.uint32)
        b = np.asarray(b, dtype=np.uint32)
        out = self.exp[self.log[a] + self.log[b]]
        zero = (a == 0) | (b == 0)
        out = np.where(zero, 0, out)
        return out.astype(np.uint32)

    # ------------------------------------------------------------------
    # Region operations (constant times a byte buffer)
    # ------------------------------------------------------------------
    @lru_cache(maxsize=4096)
    def _region_table(self, c: int) -> np.ndarray:
        """Lookup table(s) that map raw bytes to ``c * value`` bytes.

        For w <= 8 the result is a single 256-entry table; for w = 16 the
        result is a ``(2, 256)`` array of uint16 whose rows correspond to the
        high and low byte contributions.
        """
        if self.w <= 4:
            # One packed value per nibble pair is overkill for a simulator;
            # store one value per byte (high bits of the byte must be zero).
            values = np.arange(256, dtype=np.uint32)
            masked = values & (self.size - 1)
            return self.mul_array(np.full(256, c, dtype=np.uint32), masked).astype(
                np.uint8
            )
        if self.w == 8:
            values = np.arange(256, dtype=np.uint32)
            return self.mul_array(np.full(256, c, dtype=np.uint32), values).astype(
                np.uint8
            )
        if self.w == 16:
            lo = np.arange(256, dtype=np.uint32)
            hi = lo << 8
            c_arr = np.full(256, c, dtype=np.uint32)
            table = np.empty((2, 256), dtype=np.uint16)
            table[0] = self.mul_array(c_arr, hi).astype(np.uint16)
            table[1] = self.mul_array(c_arr, lo).astype(np.uint16)
            return table
        raise FieldError(f"region operations unsupported for w={self.w}")

    def words_view(self, buf: np.ndarray) -> np.ndarray:
        """View a uint8 buffer as an array of field words.

        For w <= 8 this is the buffer itself; for w = 16 it is a uint16 view
        (the buffer length must be even).
        """
        buf = np.ascontiguousarray(buf, dtype=np.uint8)
        if self.w <= 8:
            return buf
        if self.w == 16:
            if buf.size % 2:
                raise FieldError("buffer length must be a multiple of 2 for w=16")
            return buf.view(np.uint16)
        raise FieldError(f"region operations unsupported for w={self.w}")

    def mul_region(self, c: int, buf: np.ndarray) -> np.ndarray:
        """Return ``c * buf`` where ``buf`` is a uint8 buffer of field words."""
        self._check(c)
        buf = np.ascontiguousarray(buf, dtype=np.uint8)
        if c == 0:
            return np.zeros_like(buf)
        if c == 1:
            return buf.copy()
        if self.w <= 8:
            table = self._region_table(c)
            return table[buf]
        words = self.words_view(buf)
        table = self._region_table(c)
        out = table[0][(words >> 8).astype(np.uint8)] ^ table[1][
            (words & 0xFF).astype(np.uint8)
        ]
        return out.view(np.uint8).reshape(buf.shape)

    def mul_region_xor_into(self, c: int, buf: np.ndarray, out: np.ndarray) -> None:
        """Compute ``out ^= c * buf`` in place (the encoder inner loop)."""
        product = self.mul_region(c, buf)
        np.bitwise_xor(out, product, out=out)

"""Fleet topology and tenant shapes for the multi-tenant control plane.

A *fleet* is a pool of machine slots a scheduler leases to tenants.
Slots sit in a static physical hierarchy — rack -> ToR switch -> power
feed — that defines the correlated failure domains: one domain event
(PDU trip, switch death, feed brownout) takes down every slot in the
domain, across every tenant scheduled onto it.  The hierarchy is
positional: a spare machine racked into a failed slot inherits the
slot's domains, so domain membership never changes at replacement time.

A *tenant* is one training job's shape: cluster size, parallelism,
``(k, m)`` redundancy split, checkpoint cadence, tier policy, and its
arbitration standing (fair-share weight and priority).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError

#: Domain classes, outermost last; order is the blast-radius order.
DOMAIN_KINDS = ("node", "rack", "switch", "power")


@dataclass(frozen=True)
class FleetSpec:
    """Machine slots grouped into rack / switch / power failure domains.

    Attributes:
        num_slots: machine slots in the fleet.
        slots_per_rack: slots sharing one rack (PDU domain).
        racks_per_switch: racks sharing one ToR/aggregation switch.
        switches_per_power: switches sharing one power feed.

    The hierarchy must tile exactly: ``num_slots`` divisible by
    ``slots_per_rack``, racks by ``racks_per_switch``, switches by
    ``switches_per_power``.
    """

    num_slots: int = 64
    slots_per_rack: int = 4
    racks_per_switch: int = 2
    switches_per_power: int = 2

    def __post_init__(self) -> None:
        for name, value in (
            ("num_slots", self.num_slots),
            ("slots_per_rack", self.slots_per_rack),
            ("racks_per_switch", self.racks_per_switch),
            ("switches_per_power", self.switches_per_power),
        ):
            if value < 1:
                raise SimulationError(f"{name} must be >= 1, got {value}")
        if self.num_slots % self.slots_per_rack:
            raise SimulationError(
                f"num_slots={self.num_slots} not divisible by "
                f"slots_per_rack={self.slots_per_rack}"
            )
        if self.num_racks % self.racks_per_switch:
            raise SimulationError(
                f"num_racks={self.num_racks} not divisible by "
                f"racks_per_switch={self.racks_per_switch}"
            )
        if self.num_switches % self.switches_per_power:
            raise SimulationError(
                f"num_switches={self.num_switches} not divisible by "
                f"switches_per_power={self.switches_per_power}"
            )

    # ------------------------------------------------------------------
    @property
    def num_racks(self) -> int:
        return self.num_slots // self.slots_per_rack

    @property
    def num_switches(self) -> int:
        return self.num_racks // self.racks_per_switch

    @property
    def num_power(self) -> int:
        return self.num_switches // self.switches_per_power

    def rack_of(self, slot: int) -> int:
        self._check_slot(slot)
        return slot // self.slots_per_rack

    def switch_of(self, slot: int) -> int:
        return self.rack_of(slot) // self.racks_per_switch

    def power_of(self, slot: int) -> int:
        return self.switch_of(slot) // self.switches_per_power

    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < self.num_slots:
            raise SimulationError(f"slot {slot} outside fleet of {self.num_slots}")

    def domain_counts(self) -> dict[str, int]:
        """Domain class -> number of domains (for failure-trace sampling)."""
        return {
            "node": self.num_slots,
            "rack": self.num_racks,
            "switch": self.num_switches,
            "power": self.num_power,
        }

    def slots_of(self, kind: str, index: int) -> list[int]:
        """Every slot a ``(kind, index)`` domain failure takes down.

        Raises:
            SimulationError: for an unknown kind or out-of-range index.
        """
        if kind == "node":
            self._check_slot(index)
            return [index]
        if kind == "rack":
            width = self.slots_per_rack
            count = self.num_racks
        elif kind == "switch":
            width = self.slots_per_rack * self.racks_per_switch
            count = self.num_switches
        elif kind == "power":
            width = (
                self.slots_per_rack
                * self.racks_per_switch
                * self.switches_per_power
            )
            count = self.num_power
        else:
            raise SimulationError(f"unknown domain kind {kind!r}")
        if not 0 <= index < count:
            raise SimulationError(f"{kind} index {index} outside {count}")
        return list(range(index * width, (index + 1) * width))


@dataclass(frozen=True)
class TenantSpec:
    """One training job's shape and arbitration standing.

    Attributes:
        name: unique tenant id (also the arbitration claim name).
        nodes / gpus_per_node: cluster the tenant leases.
        tensor_parallel / pipeline_parallel: parallelism layout.
        k / m: erasure-coding split (``k + m`` must equal ``nodes``).
        model / scale: model zoo entry and tensor downscale factor.
        seed: the tenant job's own rng seed.
        interval: iterations between checkpoints.
        iteration_s: simulated seconds per training iteration.
        iterations: tick budget — the tenant completes after this many
            *attempted* iterations (rollbacks shrink the surviving work;
            the gap is the ``iterations_lost`` SLO).
        weight: fair-share weight on shared bottlenecks.
        priority: arbitration priority level (0 = best effort).
        remote_backup_every: checkpoints between remote backups (0 = off).
        tier_memory_versions: memory-tier retention depth; 0 disables the
            tier policy entirely.
        redundancy_floor: minimum parity a degraded regroup may keep.
    """

    name: str
    nodes: int = 4
    gpus_per_node: int = 2
    tensor_parallel: int = 2
    pipeline_parallel: int = 4
    k: int = 2
    m: int = 2
    model: str = "gpt2-h1024-L16"
    scale: float = 2e-4
    seed: int = 0
    interval: int = 2
    iteration_s: float = 30.0
    iterations: int = 16
    weight: float = 1.0
    priority: int = 0
    remote_backup_every: int = 0
    tier_memory_versions: int = 0
    redundancy_floor: int = 1

    def __post_init__(self) -> None:
        if self.k + self.m != self.nodes:
            raise SimulationError(
                f"tenant {self.name!r}: k+m={self.k + self.m} must equal "
                f"nodes={self.nodes}"
            )
        if self.weight <= 0:
            raise SimulationError(
                f"tenant {self.name!r}: weight must be positive"
            )
        if self.priority < 0:
            raise SimulationError(
                f"tenant {self.name!r}: priority must be >= 0"
            )
        if self.iterations < 1 or self.interval < 1:
            raise SimulationError(
                f"tenant {self.name!r}: iterations and interval must be >= 1"
            )

"""The fleet scheduler: many tenants, one event loop, shared resources.

One :class:`FleetScheduler` owns the shared
:class:`~repro.sim.events.Simulator` and four fleet-wide resources:

* **slots** — machine positions tenants lease (see
  :class:`~repro.fleet.spec.FleetSpec`); admission is strict
  priority-then-FIFO with head-of-line blocking, so an admissible
  tenant's wait is bounded by the demands queued ahead of it;
* **remote-store bandwidth** — a
  :class:`~repro.sim.network.BandwidthArbiter` over the storage
  aggregate pipe; a tenant claims it for the duration of each remote
  backup (and backup restore), and runs the transfer against a
  :meth:`~repro.sim.network.TimeModel.with_shared_bottleneck` model
  carrying its granted share;
* **cross-rack trunk bandwidth** — a second arbiter for tenants whose
  slots span racks, squeezing their inter-node checkpoint traffic;
* **spares** — one fleet-wide :class:`~repro.sim.spares.SparePool` every
  tenant's elastic controller draws from (queued when exhausted, with
  starvation accounting).

Failures arrive as correlated *domain* events
(:func:`~repro.sim.failures.domain_failure_trace`): one event takes down
every live slot in a rack/switch/power domain, across every tenant
scheduled onto it.  Each affected tenant's recovery is judged by its own
:class:`~repro.chaos.differential.DifferentialHarness` against the
tier-aware oracle; disagreement in either direction is a violation.

Per-job training loops are :class:`~repro.checkpoint.manager.ScheduledJobDriver`
callbacks on the shared loop — a 1-tenant fleet runs the exact sequence
the single-job CLIs run inline.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.chaos.invariants import check_restored_states
from repro.errors import RecoveryError, SimulationError
from repro.checkpoint.manager import ScheduledJobDriver
from repro.obs.metrics import MetricsRegistry
from repro.fleet.spec import FleetSpec, TenantSpec
from repro.fleet.tenant import TenantRuntime
from repro.sim.events import Simulator
from repro.sim.failures import domain_failure_trace
from repro.sim.network import BandwidthArbiter, TimeModel, gbps
from repro.sim.spares import SparePool


class AdmissionQueue:
    """Strict priority-then-FIFO admission with head-of-line blocking.

    Only the head may be admitted; a head that does not fit blocks
    everyone behind it.  That forgoes backfilling throughput for a
    bounded-wait guarantee: with equal priorities a tenant's wait
    depends only on the finite demands queued ahead of it, never on
    later arrivals (the property suite pins this).
    """

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, TenantSpec]] = []
        self._seq = 0

    def push(self, spec: TenantSpec) -> None:
        heapq.heappush(self._heap, (-spec.priority, self._seq, spec))
        self._seq += 1

    def head(self) -> TenantSpec | None:
        return self._heap[0][2] if self._heap else None

    def pop(self) -> TenantSpec:
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)


class FleetScheduler:
    """Runs a tenant mix over one shared simulated fleet.

    Args:
        fleet: slot/domain topology.
        seed: integer sequence; every internal stream derives from it.
        arbitration: ``"fair"`` or ``"priority"`` (both arbiters).
        time_model: baseline (unshared) time model for every tenant.
        spares: initial fleet-wide spare inventory.
        spare_median_delay_s / spare_sigma: provisioning delay shape.
        depot_median_delay_s: median time a failed machine spends at the
            depot before returning to inventory (or a freed slot being
            re-racked).
        cross_rack_gbps: aggregate cross-rack trunk capacity.
        mtbf_hours: domain class -> MTBF per domain; empty disables
            failures.
        duration_hours: failure-trace horizon.
    """

    def __init__(
        self,
        fleet: FleetSpec,
        seed=(0,),
        arbitration: str = "fair",
        time_model: TimeModel | None = None,
        spares: int = 6,
        spare_median_delay_s: float = 120.0,
        spare_sigma: float = 0.4,
        depot_median_delay_s: float = 900.0,
        cross_rack_gbps: float = 200.0,
        mtbf_hours: dict[str, float] | None = None,
        duration_hours: float = 8.0,
    ):
        self.fleet = fleet
        self.sim = Simulator()
        self.base_time_model = time_model or TimeModel()
        self.remote_arbiter = BandwidthArbiter(
            gbps(self.base_time_model.remote_storage_gbps), mode=arbitration
        )
        self.trunk_arbiter = BandwidthArbiter(
            gbps(cross_rack_gbps), mode=arbitration
        )
        self.cross_rack_gbps = cross_rack_gbps
        seed = tuple(int(s) for s in (seed if hasattr(seed, "__len__") else (seed,)))
        self.pool = SparePool(
            size=spares,
            median_delay_s=spare_median_delay_s,
            sigma=spare_sigma,
            rng=np.random.default_rng([*seed, 1]),
            queue_when_exhausted=True,
        )
        self.depot_rng = np.random.default_rng([*seed, 2])
        self.depot_median_delay_s = depot_median_delay_s
        self.queue = AdmissionQueue()
        self.tenants: dict[str, TenantRuntime] = {}
        self.slo_records: dict[str, dict] = {}
        self.cycles: list[dict] = []
        self.violations: list[str] = []
        self.free_slots: list[int] = list(range(fleet.num_slots))
        self.down_slots: set[int] = set()
        self.slot_owner: dict[int, str] = {}
        self.submitted: dict[str, float] = {}
        self._finalized: list[str] = []
        #: Scheduler-owned metrics: only *deterministic* control-plane
        #: counters/histograms live here (admissions, failures, sim-time
        #: waits), so flushing a snapshot into the episode record keeps
        #: same-seed reruns byte-identical.  The kernel-level registry
        #: (``obs.metrics.active()``) is deliberately NOT installed for
        #: fleet runs — the thread-pool encoder's adaptive mode choice is
        #: wall-clock-driven, so its counters vary run to run.
        self.metrics = MetricsRegistry()
        #: Optional telemetry sampler (see :meth:`attach_sampler`).
        self.sampler = None
        trace_rng = np.random.default_rng([*seed, 0])
        mtbf_hours = mtbf_hours or {}
        self.failure_trace = domain_failure_trace(
            fleet.domain_counts(), mtbf_hours, duration_hours, trace_rng
        ) if mtbf_hours else []
        for event in self.failure_trace:
            self.sim.schedule(
                event.time * 3600.0,
                lambda e=event: self._on_domain_event(e),
            )

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def attach_sampler(self, sampler) -> None:
        """Register fleet-wide probes and observe the shared clock.

        Probes only *read* scheduler state; the sampler rides the
        simulator's ``on_advance`` observer, so ``sim.processed`` /
        ``sim.now`` — both serialized into the report — are untouched.
        """
        self.sampler = sampler
        sampler.register_probe("admission_queue", lambda t: float(len(self.queue)))
        sampler.register_probe(
            "running_tenants",
            lambda t: float(
                sum(1 for x in self.tenants.values() if x.state == "running")
            ),
        )
        sampler.register_probe("free_slots", lambda t: float(len(self.free_slots)))
        sampler.register_probe("down_slots", lambda t: float(len(self.down_slots)))
        sampler.register_probe(
            "degraded_tenants",
            lambda t: float(
                sum(
                    1
                    for x in self.tenants.values()
                    if x.state == "running"
                    and x.manager is not None
                    and x.manager.degraded
                )
            ),
        )
        sampler.register_probe(
            "spares_remaining",
            lambda t: float(self.pool.remaining or 0),
        )
        sampler.register_probe(
            "spare_queue", lambda t: float(len(self.pool.waiting))
        )
        sampler.register_probe(
            "spare_wait_s",
            lambda t: (
                max(t - w.requested_at for w in self.pool.waiting)
                if self.pool.waiting
                else 0.0
            ),
        )
        for tier in ("host", "disk", "remote"):
            sampler.register_probe(
                f"{tier}_bytes", self._tier_bytes_probe(tier)
            )
        sampler.attach(self.sim)

    def _tier_bytes_probe(self, tier: str):
        def probe(t: float) -> float:
            total = 0
            for tenant in self.tenants.values():
                engine = tenant.engine
                if engine is not None:
                    total += getattr(engine, tier).total_bytes
            return float(total)

        return probe

    def _tenant_probes(self, tenant: TenantRuntime) -> dict:
        """Per-tenant signals sampled while the tenant is live."""
        name = tenant.spec.name
        manager = tenant.manager
        engine = tenant.engine
        job = tenant.job
        return {
            "degraded": lambda t: 1.0 if manager.degraded else 0.0,
            "degraded_age_s": lambda t: (
                t - manager.degraded_since if manager.degraded else 0.0
            ),
            "k": lambda t: float(engine.config.k),
            "m": lambda t: float(engine.config.m),
            "share_remote": lambda t: (
                self.remote_arbiter.claims[name].fraction
                if name in self.remote_arbiter.claims
                else 0.0
            ),
            "share_trunk": lambda t: (
                self.trunk_arbiter.claims[name].fraction
                if name in self.trunk_arbiter.claims
                else 0.0
            ),
            "iteration": lambda t: float(job.iteration),
        }

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(self, spec: TenantSpec) -> None:
        """Enqueue a tenant at the current simulated time."""
        if spec.name in self.submitted:
            raise SimulationError(f"duplicate tenant {spec.name!r}")
        self.submitted[spec.name] = self.sim.now
        self.queue.push(spec)
        self._try_admit()

    def _try_admit(self) -> None:
        while True:
            head = self.queue.head()
            if head is None or head.nodes > len(self.free_slots):
                return
            self._admit(self.queue.pop())

    def _admit(self, spec: TenantSpec) -> None:
        self.free_slots.sort()
        slots = self.free_slots[: spec.nodes]
        del self.free_slots[: spec.nodes]
        tenant = TenantRuntime(
            spec,
            self.pool,
            slots,
            submitted_at=self.submitted[spec.name],
            admitted_at=self.sim.now,
        )
        for slot in slots:
            self.slot_owner[slot] = spec.name
        self.tenants[spec.name] = tenant
        # Initial checkpoint at admission (the paper's ``initialize``):
        # a tenant is never live without at least one committed version.
        tenant.manager.step()
        tenant.record_saves()
        driver = ScheduledJobDriver(
            self.sim,
            tenant.manager,
            iteration_s=spec.iteration_s,
            max_iterations=spec.iterations,
            pre_save=lambda d, name=spec.name: self._pre_save(name),
            post_save=lambda d, token, report, name=spec.name: (
                self._post_save(name, token, report)
            ),
            on_done=lambda d, name=spec.name: self._on_tenant_done(name),
        )
        tenant.driver = driver
        driver.start(spec.iteration_s)
        self.metrics.counter("fleet.admissions").inc()
        self.metrics.histogram("fleet.admission_wait_s").observe(
            self.sim.now - self.submitted[spec.name]
        )
        if self.sampler is not None:
            self.sampler.watch_tenant(
                spec.name,
                tenant.manager,
                self._tenant_probes(tenant),
                t=self.sim.now,
            )
        self.cycles.append(
            {
                "kind": "admit",
                "tenant": spec.name,
                "t": round(self.sim.now, 6),
                "slots": slots,
                "wait_s": round(self.sim.now - self.submitted[spec.name], 6),
            }
        )

    # ------------------------------------------------------------------
    # Save-path arbitration (ScheduledJobDriver hooks)
    # ------------------------------------------------------------------
    def _spans_racks(self, tenant: TenantRuntime) -> bool:
        racks = {self.fleet.rack_of(s) for s in tenant.slots.values()}
        return len(racks) > 1

    def _apply_time_model(self, tenant: TenantRuntime, tm: TimeModel) -> None:
        if tenant.job is None:
            # Already released: a refused/error recovery finalizes the
            # tenant before the failure handler's cleanup runs.
            return
        tenant.job.time_model = tm
        tenant.engine.network.time_model = tm

    def _acquire_shares(
        self, tenant: TenantRuntime, want_remote: bool
    ) -> tuple[list[BandwidthArbiter], TimeModel]:
        """Claim the shared bottlenecks a transfer phase will touch.

        Returns the held arbiters and the share-scaled time model.
        """
        spec = tenant.spec
        held: list[BandwidthArbiter] = []
        remote_share = 1.0
        inter_share = 1.0
        if want_remote:
            if spec.name in self.remote_arbiter.claims:
                self.remote_arbiter.release(spec.name)
            claim = self.remote_arbiter.acquire(
                spec.name, weight=spec.weight, priority=spec.priority
            )
            held.append(self.remote_arbiter)
            remote_share = claim.fraction
        if self._spans_racks(tenant):
            if spec.name in self.trunk_arbiter.claims:
                self.trunk_arbiter.release(spec.name)
            claim = self.trunk_arbiter.acquire(
                spec.name, weight=spec.weight, priority=spec.priority
            )
            held.append(self.trunk_arbiter)
            # The tenant's NIC-level bandwidth is capped by its granted
            # slice of the trunk.
            trunk_gbps = claim.fraction * self.cross_rack_gbps
            inter_share = min(
                1.0, trunk_gbps / self.base_time_model.inter_node_gbps
            )
        tm = self.base_time_model.with_shared_bottleneck(
            remote_share=remote_share, inter_node_share=inter_share
        )
        return held, tm

    def _release_shares(
        self, tenant: TenantRuntime, held: list[BandwidthArbiter]
    ) -> None:
        for arbiter in held:
            if tenant.spec.name in arbiter.claims:
                arbiter.release(tenant.spec.name)

    def _pre_save(self, name: str):
        tenant = self.tenants[name]
        held, tm = self._acquire_shares(
            tenant, want_remote=tenant.manager.backup_due()
        )
        self._apply_time_model(tenant, tm)
        return held or True  # a token the driver always hands back

    def _post_save(self, name: str, token, report) -> None:
        tenant = self.tenants[name]
        self._apply_time_model(tenant, self.base_time_model)
        tenant.record_saves()
        if token is True:
            return
        # Hold the claims for the save's full durability window, so
        # overlapping tenants contend; then release and rebalance.
        hold = report.checkpoint_time if report is not None else 0.0
        self.sim.schedule(hold, lambda: self._release_shares(tenant, token))

    # ------------------------------------------------------------------
    # Correlated failures
    # ------------------------------------------------------------------
    def _depot_delay(self) -> float:
        from repro.sim.spares import sample_replacement_delay

        return sample_replacement_delay(
            self.depot_rng, self.depot_median_delay_s, 0.4
        )

    def _on_domain_event(self, event) -> None:
        slots = [
            s
            for s in self.fleet.slots_of(event.kind, event.index)
            if s not in self.down_slots
        ]
        if not slots:
            return
        by_tenant: dict[str, set[int]] = {}
        for slot in slots:
            self.down_slots.add(slot)
            owner = self.slot_owner.get(slot)
            if owner is None:
                # A free slot's machine died: repair in place, then the
                # slot rejoins the free list.
                if slot in self.free_slots:
                    self.free_slots.remove(slot)
                self.sim.schedule(
                    self._depot_delay(), lambda s=slot: self._on_slot_repaired(s)
                )
            else:
                by_tenant.setdefault(owner, set()).add(slot)
                # The dead machine returns to fleet inventory after the
                # depot turnaround; its slot position is refilled by the
                # tenant's spare join.
                self.sim.schedule(
                    self._depot_delay(), lambda: self._on_depot_return()
                )
        self.metrics.counter("fleet.domain_failures").inc()
        self.metrics.counter(f"fleet.domain_failures.{event.kind}").inc()
        if self.sampler is not None:
            self.sampler.note_event(
                self.sim.now,
                "domain_failure",
                domain=f"{event.kind}{event.index}",
                slots=len(slots),
                tenants=sorted(by_tenant),
            )
        self.cycles.append(
            {
                "kind": "domain_failure",
                "domain": f"{event.kind}{event.index}",
                "t": round(self.sim.now, 6),
                "slots": len(slots),
                "tenants": sorted(by_tenant),
            }
        )
        for name in sorted(by_tenant):
            tenant = self.tenants.get(name)
            if tenant is None or tenant.state != "running":
                continue
            ranks = tenant.ranks_of_slots(by_tenant[name])
            self._handle_tenant_failure(tenant, ranks, event)

    def _on_slot_repaired(self, slot: int) -> None:
        self.down_slots.discard(slot)
        if self.slot_owner.get(slot) is None:
            self.free_slots.append(slot)
            self._try_admit()

    def _on_depot_return(self) -> None:
        promoted = self.pool.restock(1, self.sim.now)
        self._schedule_polls(promoted)

    def _schedule_polls(self, requests) -> None:
        for request in requests:
            if request.tenant is None:
                continue
            self.sim.schedule_at(
                request.ready_at,
                lambda name=request.tenant: self._poll_tenant(name),
            )

    def _handle_tenant_failure(self, tenant, ranks: set[int], event) -> None:
        name = tenant.spec.name
        tenant.failure_events += 1
        self.metrics.counter("fleet.tenant_failures").inc()
        if self.sampler is not None:
            self.sampler.note_event(
                self.sim.now,
                "tenant_failure",
                tenant=name,
                cause=f"{event.kind}{event.index}",
                ranks=sorted(int(r) for r in ranks),
            )
        driver = tenant.driver
        if not driver.done:
            driver.pause()
        controller = tenant.controller
        all_failed = set(controller.membership.dead) | set(ranks)
        expectation = tenant.harness.predict(all_failed)
        held, tm = self._acquire_shares(
            tenant, want_remote=expectation.kind == "backup"
        )
        self._apply_time_model(tenant, tm)
        pending_before = sum(
            1 for r in self.pool.pending if r.tenant == name
        )
        cycle = {
            "kind": "tenant_failure",
            "tenant": name,
            "t": round(self.sim.now, 6),
            "cause": f"{event.kind}{event.index}",
            "ranks": sorted(int(r) for r in ranks),
            "expected": expectation.kind,
        }
        try:
            report = controller.on_failure(set(ranks), self.sim.now)
        except RecoveryError:
            tenant.harness.observe("refused")
            tenant.refused_events += 1
            cycle["outcome"] = "refused"
            self.cycles.append(cycle)
            self._finalize_tenant(
                tenant, "killed", f"unrecoverable {event.kind} loss"
            )
            return
        except Exception as exc:  # noqa: BLE001 — leaks are findings
            tenant.harness.observe("engine_error")
            cycle["outcome"] = f"engine_error:{type(exc).__name__}"
            self.cycles.append(cycle)
            self._finalize_tenant(tenant, "killed", f"engine error: {exc}")
            return
        finally:
            self._apply_time_model(tenant, self.base_time_model)
            self._release_shares(tenant, held)
        outcome = "backup" if report.tier == "remote" else report.tier
        self.metrics.counter("fleet.recoveries").inc()
        self.metrics.counter(f"fleet.recoveries.{outcome}").inc()
        self.metrics.histogram("fleet.recovery_s").observe(report.recovery_time)
        tenant.harness.observe(outcome, report.version)
        cycle["outcome"] = outcome
        cycle["version"] = report.version
        self.cycles.append(cycle)
        self._check_restored(tenant, report)
        # Spares the controller just requested: poll when provisioned.
        new_pending = [
            r for r in self.pool.pending if r.tenant == name
        ][pending_before:]
        self._schedule_polls(new_pending)
        if controller.can_checkpoint:
            driver.resume(report.recovery_time)
        else:
            self.cycles.append(
                {
                    "kind": "blocked",
                    "tenant": name,
                    "t": round(self.sim.now, 6),
                }
            )

    def _check_restored(self, tenant, report) -> None:
        """Bit-exactness and iteration accounting after a recovery."""
        name = tenant.spec.name
        states = tenant.version_states.get(report.version)
        if states is None:
            # Restored a version older than the snapshot window (or one
            # no completed save committed — the harness already judged
            # version correctness against the oracle).
            return
        self.violations.extend(
            f"{name}: {v}"
            for v in check_restored_states(tenant.job, states)
        )
        expected_iteration = tenant.version_iteration[report.version]
        if tenant.job.iteration != expected_iteration:
            self.violations.append(
                f"{name}: resumed at iteration {tenant.job.iteration}, "
                f"expected {expected_iteration}"
            )

    # ------------------------------------------------------------------
    # Spare arrivals
    # ------------------------------------------------------------------
    def _poll_tenant(self, name: str) -> None:
        tenant = self.tenants.get(name)
        if tenant is None or tenant.state != "running":
            return
        controller = tenant.controller
        joined = controller.poll_spares(self.sim.now)
        for rank in joined:
            slot = tenant.slots[rank]
            self.down_slots.discard(slot)
            self.metrics.counter("fleet.spare_joins").inc()
            if self.sampler is not None:
                self.sampler.note_event(
                    self.sim.now, "spare_join", tenant=name, rank=int(rank)
                )
            self.cycles.append(
                {
                    "kind": "join",
                    "tenant": name,
                    "t": round(self.sim.now, 6),
                    "rank": int(rank),
                }
            )
        if joined and controller.can_checkpoint and not tenant.driver.done:
            tenant.driver.resume()

    # ------------------------------------------------------------------
    # Tenant end-of-life
    # ------------------------------------------------------------------
    def _on_tenant_done(self, name: str) -> None:
        tenant = self.tenants[name]
        self._finalize_tenant(tenant, "completed", "")

    def _finalize_tenant(self, tenant, state: str, detail: str) -> None:
        name = tenant.spec.name
        tenant.state = state
        tenant.outcome_detail = detail
        if tenant.driver is not None:
            tenant.driver.pause()
        self.metrics.counter(f"fleet.tenants_{state}").inc()
        if tenant.manager is not None:
            for entry in tenant.manager.stats.redundancy_ledger:
                self.metrics.histogram("fleet.degraded_window_s").observe(
                    entry["degraded_seconds"]
                )
        if self.sampler is not None:
            # Freeze the series before release() drops the manager.
            self.sampler.unwatch(name, self.sim.now)
        self.violations.extend(
            v for v in tenant.harness.violations
        )
        tenant.harness.violations = []
        record = tenant.slo()
        record["degraded_at_exit"] = bool(
            tenant.manager is not None and tenant.manager.degraded
        )
        self.slo_records[name] = record
        self._finalized.append(name)
        returned = self.pool.cancel_tenant(name)
        if returned:
            promoted = self.pool.restock(0, self.sim.now)
            self._schedule_polls(promoted)
        for slot in tenant.release():
            del self.slot_owner[slot]
            if slot in self.down_slots:
                # The position is machine-less; a fresh machine is
                # racked after a depot turnaround.
                self.sim.schedule(
                    self._depot_delay(),
                    lambda s=slot: self._on_slot_repaired(s),
                )
            else:
                self.free_slots.append(slot)
        self.cycles.append(
            {
                "kind": state,
                "tenant": name,
                "t": round(self.sim.now, 6),
                **({"detail": detail} if detail else {}),
            }
        )
        self._try_admit()

    # ------------------------------------------------------------------
    def run(self, max_stall_rounds: int = 1000) -> None:
        """Run to completion: drain events, breaking spare-starvation
        deadlocks by killing stalled tenants (their wait is already in
        the starvation ledger) until every submitted tenant finished.
        """
        self.sim.run()
        for _ in range(max_stall_rounds):
            stalled = [
                t
                for t in self.tenants.values()
                if t.state == "running"
            ]
            if not stalled and not len(self.queue):
                return
            for tenant in stalled:
                self._finalize_tenant(
                    tenant, "stalled", "spare starvation at trace end"
                )
            self._try_admit()
            self.sim.run()
        raise SimulationError(
            f"fleet failed to drain after {max_stall_rounds} stall rounds"
        )

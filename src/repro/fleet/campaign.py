"""The fleet campaign: seeded multi-tenant episodes and the scaling curve.

One *episode* builds a :class:`~repro.fleet.scheduler.FleetScheduler`
over the configured fleet, samples a tenant mix (shapes, cadences,
weights, priorities, backup/tier policies) from
``default_rng([seed, episode])``, submits the tenants with Poisson
inter-arrivals, and runs the shared event loop to completion — through
correlated domain failures, per-tenant oracle-judged recoveries, spare
contention and admission queueing.  The report aggregates per-tenant
SLOs (``degraded_seconds``, ``time_to_full_redundancy``,
``iterations_lost``, admission and spare waits) across the fleet.

Determinism contract: :meth:`FleetReport.to_dict` is provenance- and
wall-clock-free, so two same-seed runs serialize byte-identically;
wall-clock measurements (the scaling curve's point timings) ride in the
``timing`` section :meth:`FleetReport.to_json` adds alongside the
provenance stamp.
"""

from __future__ import annotations

import gc
import json
import math
import time
from dataclasses import dataclass, field

import numpy as np

from repro.fleet.scheduler import FleetScheduler
from repro.fleet.spec import FleetSpec, TenantSpec


@dataclass(frozen=True)
class FleetConfig:
    """Campaign parameters (defaults = the CI smoke shape, scaled up)."""

    jobs: int = 50
    episodes: int = 1
    seed: int = 0
    arbitration: str = "fair"
    fleet_slots: int = 64
    slots_per_rack: int = 4
    racks_per_switch: int = 2
    switches_per_power: int = 2
    spares: int = 6
    spare_median_delay_s: float = 120.0
    depot_median_delay_s: float = 900.0
    cross_rack_gbps: float = 200.0
    mtbf_node_hours: float = 25.0
    mtbf_rack_hours: float = 250.0
    mtbf_switch_hours: float = 1500.0
    mtbf_power_hours: float = 8000.0
    duration_hours: float = 8.0
    mean_interarrival_s: float = 45.0
    model: str = "gpt2-h1024-L16"
    scale: float = 5e-5
    #: Telemetry knobs.  Deliberately excluded from the serialized config
    #: section: a ``--timeline`` run must stay byte-identical to a plain
    #: run in every field except the new per-episode ``timeline`` block.
    timeline: bool = False
    timeline_period_s: float = 60.0

    def fleet_spec(self) -> FleetSpec:
        return FleetSpec(
            num_slots=self.fleet_slots,
            slots_per_rack=self.slots_per_rack,
            racks_per_switch=self.racks_per_switch,
            switches_per_power=self.switches_per_power,
        )

    def mtbf_hours(self) -> dict[str, float]:
        return {
            "node": self.mtbf_node_hours,
            "rack": self.mtbf_rack_hours,
            "switch": self.mtbf_switch_hours,
            "power": self.mtbf_power_hours,
        }


@dataclass
class FleetEpisodeResult:
    """One episode's tenant SLOs, membership cycles and violations."""

    episode: int
    tenants: list[dict] = field(default_factory=list)
    cycles: list[dict] = field(default_factory=list)
    violations: list[str] = field(default_factory=list)
    starvation: dict = field(default_factory=dict)
    sim_seconds: float = 0.0
    events_processed: int = 0
    #: Snapshot of the scheduler-owned deterministic metrics registry
    #: (counters/gauges/histograms), flushed at episode end.
    metrics: dict = field(default_factory=dict)
    #: Sampled telemetry (``TimeSeriesSampler.timeline_dict()``); None
    #: unless the episode ran with ``timeline=True``.
    timeline: dict | None = None


def aggregate_slos(tenants: list[dict]) -> dict:
    """Fleet-level roll-up of the per-tenant SLO records."""
    def stats(values: list[float]) -> dict:
        if not values:
            return {"total": 0.0, "mean": 0.0, "max": 0.0}
        return {
            "total": round(sum(values), 6),
            "mean": round(sum(values) / len(values), 6),
            "max": round(max(values), 6),
        }

    by_state: dict[str, int] = {}
    for t in tenants:
        by_state[t["state"]] = by_state.get(t["state"], 0) + 1
    ttfr = [x for t in tenants for x in t.get("time_to_full_redundancy", [])]
    return {
        "jobs": len(tenants),
        "states": {k: by_state[k] for k in sorted(by_state)},
        "degraded_seconds": stats(
            [t.get("degraded_seconds", 0.0) for t in tenants]
        ),
        "time_to_full_redundancy": {
            "count": len(ttfr),
            **{k: v for k, v in stats(ttfr).items() if k != "total"},
        },
        "iterations_lost": stats(
            [float(t.get("iterations_lost", 0)) for t in tenants]
        ),
        "admission_wait_s": stats(
            [t.get("admission_wait_s", 0.0) for t in tenants]
        ),
        "checkpoints": int(
            sum(t.get("checkpoints", 0) for t in tenants)
        ),
        "remote_backups": int(
            sum(t.get("remote_backups", 0) for t in tenants)
        ),
        "recoveries": int(sum(t.get("recoveries", 0) for t in tenants)),
        "failure_events": int(
            sum(t.get("failure_events", 0) for t in tenants)
        ),
    }


@dataclass
class FleetReport:
    """All episodes plus the (optional) jobs-vs-wall-clock scaling curve."""

    config: FleetConfig
    episodes: list[FleetEpisodeResult]
    #: Scaling-curve points: ``{"jobs", "sim_seconds", "events",
    #: "wall_s"}``.  ``wall_s`` is non-deterministic and therefore
    #: excluded from :meth:`to_dict`; it rides in the ``timing`` section
    #: of :meth:`to_json`.
    scaling: list[dict] = field(default_factory=list)

    @property
    def violations(self) -> list[str]:
        return [
            f"episode {e.episode}: {v}"
            for e in self.episodes
            for v in e.violations
        ]

    def aggregates(self) -> dict:
        return aggregate_slos(
            [t for e in self.episodes for t in e.tenants]
        )

    # ------------------------------------------------------------------
    def scaling_exponent(self) -> float | None:
        """Least-squares slope of log(wall) vs log(jobs); None if < 2 pts."""
        points = [
            p for p in self.scaling if p.get("wall_s", 0) > 0 and p["jobs"] > 0
        ]
        if len(points) < 2:
            return None
        xs = [math.log(p["jobs"]) for p in points]
        ys = [math.log(p["wall_s"]) for p in points]
        n = len(points)
        mean_x = sum(xs) / n
        mean_y = sum(ys) / n
        denom = sum((x - mean_x) ** 2 for x in xs)
        if denom == 0:
            return None
        return sum(
            (x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)
        ) / denom

    @property
    def sub_quadratic(self) -> bool | None:
        """True when wall-clock grows sub-quadratically in job count."""
        exponent = self.scaling_exponent()
        if exponent is None:
            return None
        return exponent < 2.0

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-data form, deliberately provenance- and wall-clock-free
        (determinism tests compare two runs by byte equality);
        :meth:`to_json` adds the stamp and timings."""
        return {
            "config": {
                "jobs": self.config.jobs,
                "episodes": self.config.episodes,
                "seed": self.config.seed,
                "arbitration": self.config.arbitration,
                "fleet_slots": self.config.fleet_slots,
                "slots_per_rack": self.config.slots_per_rack,
                "racks_per_switch": self.config.racks_per_switch,
                "switches_per_power": self.config.switches_per_power,
                "spares": self.config.spares,
                "duration_hours": self.config.duration_hours,
                "mean_interarrival_s": self.config.mean_interarrival_s,
                "model": self.config.model,
                "scale": self.config.scale,
            },
            "aggregates": self.aggregates(),
            "violations": self.violations,
            "episodes": [
                {
                    "episode": e.episode,
                    "tenants": e.tenants,
                    "cycles": e.cycles,
                    "violations": e.violations,
                    "starvation": e.starvation,
                    "sim_seconds": round(e.sim_seconds, 6),
                    "events_processed": e.events_processed,
                    "metrics": e.metrics,
                    # The one field a --timeline run adds; everything
                    # else stays byte-identical to a plain run.
                    **({"timeline": e.timeline} if e.timeline is not None else {}),
                }
                for e in self.episodes
            ],
            "scaling": [
                {k: v for k, v in point.items() if k != "wall_s"}
                for point in self.scaling
            ],
        }

    def to_json(self, provenance: bool = True) -> str:
        """JSON form for ``FLEET_report.json``, provenance-stamped."""
        payload = self.to_dict()
        if provenance:
            from repro.obs.provenance import provenance_stamp

            payload["provenance"] = provenance_stamp()
            payload["timing"] = {
                "scaling_wall_s": [
                    {"jobs": p["jobs"], "wall_s": round(p["wall_s"], 3)}
                    for p in self.scaling
                ],
                "scaling_exponent": self.scaling_exponent(),
            }
        return json.dumps(payload, indent=2, sort_keys=True)

    def render(self) -> str:
        """ASCII summary: fleet aggregates, starvation, scaling curve."""
        agg = self.aggregates()
        lines = [
            f"fleet campaign: {len(self.episodes)} episode(s) x "
            f"{self.config.jobs} jobs on {self.config.fleet_slots} slots "
            f"({self.config.arbitration} arbitration), "
            f"{len(self.violations)} violations",
            f"  states: "
            + ", ".join(f"{k}={v}" for k, v in agg["states"].items()),
            f"  degraded_seconds: total={agg['degraded_seconds']['total']:.1f} "
            f"mean={agg['degraded_seconds']['mean']:.1f} "
            f"max={agg['degraded_seconds']['max']:.1f}",
            f"  time_to_full_redundancy: count={agg['time_to_full_redundancy']['count']} "
            f"mean={agg['time_to_full_redundancy']['mean']:.1f}s "
            f"max={agg['time_to_full_redundancy']['max']:.1f}s",
            f"  iterations_lost: total={agg['iterations_lost']['total']:.0f} "
            f"max={agg['iterations_lost']['max']:.0f}",
            f"  admission_wait_s: mean={agg['admission_wait_s']['mean']:.1f} "
            f"max={agg['admission_wait_s']['max']:.1f}",
            f"  checkpoints={agg['checkpoints']} "
            f"remote_backups={agg['remote_backups']} "
            f"recoveries={agg['recoveries']}",
        ]
        for episode in self.episodes:
            for name, h in sorted(
                episode.metrics.get("histograms", {}).items()
            ):
                if not h.get("count"):
                    continue
                lines.append(
                    f"  episode {episode.episode} {name}: n={h['count']} "
                    f"mean={h['mean']:.1f}s p50={h['p50']:.1f}s "
                    f"p95={h['p95']:.1f}s p99={h['p99']:.1f}s"
                )
            if episode.starvation:
                queued = sum(
                    row["queued_grants"]
                    for row in episode.starvation.values()
                )
                worst = max(
                    row["max_queued_s"] for row in episode.starvation.values()
                )
                lines.append(
                    f"  episode {episode.episode} spare starvation: "
                    f"{queued} queued grants, worst wait {worst:.0f}s"
                )
        if self.scaling:
            for point in self.scaling:
                lines.append(
                    f"  scaling: {point['jobs']:>4d} jobs -> "
                    f"{point.get('wall_s', 0.0):6.2f}s wall, "
                    f"{point['events']} events, "
                    f"{point['sim_seconds']:.0f} sim-s"
                )
            exponent = self.scaling_exponent()
            if exponent is not None:
                verdict = "sub-quadratic" if exponent < 2.0 else "SUPER-QUADRATIC"
                lines.append(
                    f"  scaling exponent: {exponent:.2f} ({verdict})"
                )
        for violation in self.violations:
            lines.append(f"VIOLATION: {violation}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
def sample_tenant_specs(
    config: FleetConfig, episode: int, jobs: int, rng: np.random.Generator
) -> list[tuple[float, TenantSpec]]:
    """The episode's tenant mix: (submit_time, spec) pairs, time-ordered.

    Every knob is drawn from the episode rng, so the mix is part of the
    campaign's determinism contract.
    """
    specs: list[tuple[float, TenantSpec]] = []
    t = 0.0
    for index in range(jobs):
        if index:
            t += float(rng.exponential(config.mean_interarrival_s))
        # k must divide the tenant's world size (8); the two admissible
        # 4-node splits trade parity budget against encode cost.
        k, m = (2, 2) if rng.random() < 0.7 else (1, 3)
        spec = TenantSpec(
            name=f"job-{episode:03d}-{index:04d}",
            k=k,
            m=m,
            model=config.model,
            scale=config.scale,
            seed=config.seed * 7919 + episode * 653 + index,
            interval=int(rng.integers(1, 4)),
            iteration_s=float(rng.uniform(20.0, 40.0)),
            iterations=int(rng.integers(10, 23)),
            weight=float(rng.choice([1.0, 2.0, 4.0])),
            priority=int(rng.choice([0, 0, 0, 1])),
            remote_backup_every=int(rng.choice([0, 2, 3])),
            tier_memory_versions=int(rng.choice([0, 2])),
        )
        specs.append((t, spec))
    return specs


def run_fleet_episode(
    episode: int, config: FleetConfig, jobs: int | None = None
) -> FleetEpisodeResult:
    """One seeded fleet episode over ``jobs`` tenants.

    The cyclic garbage collector is paused for the duration of the
    episode: the save path is allocation-heavy (every checkpoint copies
    hundreds of shard arrays) and generational scans grow with the live
    heap, so at fleet concurrency GC inflates per-save wall clock ~20%.
    Episode teardown frees tenants deterministically (``release()``), so
    one collect at exit reclaims the cycles.
    """
    jobs = config.jobs if jobs is None else jobs
    rng = np.random.default_rng([config.seed, episode])
    scheduler = FleetScheduler(
        config.fleet_spec(),
        seed=(config.seed, episode),
        arbitration=config.arbitration,
        spares=config.spares,
        spare_median_delay_s=config.spare_median_delay_s,
        depot_median_delay_s=config.depot_median_delay_s,
        cross_rack_gbps=config.cross_rack_gbps,
        mtbf_hours=config.mtbf_hours(),
        duration_hours=config.duration_hours,
    )
    for submit_at, spec in sample_tenant_specs(config, episode, jobs, rng):
        scheduler.sim.schedule(
            submit_at, lambda s=spec: scheduler.submit(s)
        )
    sampler = None
    if config.timeline:
        from repro.obs.alerts import AlertEngine, default_fleet_rules
        from repro.obs.timeseries import TimeSeriesSampler, use_sampler

        sampler = TimeSeriesSampler(
            period_s=config.timeline_period_s,
            alert_engine=AlertEngine(
                default_fleet_rules(config.duration_hours)
            ),
        )
        scheduler.attach_sampler(sampler)
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        if sampler is not None:
            with use_sampler(sampler):
                scheduler.run()
        else:
            scheduler.run()
    finally:
        if gc_was_enabled:
            gc.enable()
        gc.collect()
    result = FleetEpisodeResult(episode=episode)
    result.tenants = [
        scheduler.slo_records[name]
        for name in sorted(scheduler.slo_records)
    ]
    result.cycles = scheduler.cycles
    result.violations = scheduler.violations
    result.starvation = scheduler.pool.starvation_summary()
    result.sim_seconds = scheduler.sim.now
    result.events_processed = scheduler.sim.processed
    result.metrics = scheduler.metrics.snapshot()
    if sampler is not None:
        sampler.finalize(scheduler.sim.now)
        result.timeline = sampler.timeline_dict()
        from repro.obs.timeseries import crosscheck_timeline

        result.violations.extend(
            crosscheck_timeline(result.timeline, result.tenants)
        )
    return result


def run_fleet_campaign(config: FleetConfig | None = None) -> FleetReport:
    """Run ``config.episodes`` fleet episodes."""
    config = config or FleetConfig()
    episodes = [
        run_fleet_episode(episode, config)
        for episode in range(config.episodes)
    ]
    return FleetReport(config=config, episodes=episodes)


def run_scaling_curve(
    config: FleetConfig, points: list[int] | None = None
) -> list[dict]:
    """Measure wall-clock vs job count on single fresh episodes.

    Each point runs episode 0 of the same config with a different job
    count and records wall seconds plus the deterministic loop stats.
    The default points are ``jobs/4, jobs/2, jobs``.
    """
    if points is None:
        points = sorted(
            {max(1, config.jobs // 4), max(1, config.jobs // 2), config.jobs}
        )
    curve = []
    for jobs in points:
        started = time.perf_counter()
        result = run_fleet_episode(0, config, jobs=jobs)
        wall = time.perf_counter() - started
        curve.append(
            {
                "jobs": jobs,
                "sim_seconds": round(result.sim_seconds, 6),
                "events": result.events_processed,
                "violations": len(result.violations),
                "wall_s": wall,
            }
        )
    return curve

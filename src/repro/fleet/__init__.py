"""Fleet-scale multi-tenant control plane.

Many concurrent training jobs over one shared simulated fleet: slot
admission, fair-share/priority bandwidth arbitration, correlated
rack/switch/power failure domains, a fleet-wide spare pool with
starvation accounting, and per-tenant oracle-judged recoveries — all
driven by a single discrete-event loop.
"""

from repro.fleet.campaign import (
    FleetConfig,
    FleetEpisodeResult,
    FleetReport,
    aggregate_slos,
    run_fleet_campaign,
    run_fleet_episode,
    run_scaling_curve,
    sample_tenant_specs,
)
from repro.fleet.scheduler import AdmissionQueue, FleetScheduler
from repro.fleet.spec import DOMAIN_KINDS, FleetSpec, TenantSpec
from repro.fleet.tenant import TenantRuntime, TenantSpareView

__all__ = [
    "AdmissionQueue",
    "DOMAIN_KINDS",
    "FleetConfig",
    "FleetEpisodeResult",
    "FleetReport",
    "FleetScheduler",
    "FleetSpec",
    "TenantRuntime",
    "TenantSpareView",
    "TenantSpec",
    "aggregate_slos",
    "run_fleet_campaign",
    "run_fleet_episode",
    "run_scaling_curve",
    "sample_tenant_specs",
]

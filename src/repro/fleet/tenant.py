"""Per-tenant runtime: job + engine + manager + elastic controller.

One admitted tenant bundles everything a single-job campaign builds by
hand — a :class:`~repro.checkpoint.job.TrainingJob`, an ECCheck engine
with the tenant's ``(k, m)`` split, a
:class:`~repro.checkpoint.manager.CheckpointManager` carrying the
tenant's cadence/backup/tier policy, and an
:class:`~repro.elastic.controller.ElasticClusterController` for degraded
windows and spare joins — plus the audit state the fleet campaign
checks: recent committed snapshots for bit-exactness, a per-tenant
differential harness, and the SLO extraction the report aggregates.

The controller draws spares through a :class:`TenantSpareView`, a thin
facade over the fleet-wide pool that tags requests with the tenant name
and filters arrivals back to their owner.
"""

from __future__ import annotations

import numpy as np

from repro.chaos.differential import DifferentialHarness
from repro.checkpoint.job import TrainingJob
from repro.checkpoint.manager import CheckpointManager
from repro.checkpoint.tiering import TierPolicy
from repro.core.eccheck import ECCheckConfig, ECCheckEngine
from repro.elastic import ElasticClusterController, RedundancyPolicy
from repro.fleet.spec import TenantSpec
from repro.parallel.strategy import ParallelismSpec
from repro.parallel.topology import ClusterSpec
from repro.sim.spares import SparePool, SpareRequest

#: Committed snapshots retained per tenant for bit-exactness checks.
#: Restores always land on the newest recoverable version; a short
#: window bounds fleet memory at hundreds of tenants.
SNAPSHOT_WINDOW = 4


class TenantSpareView:
    """A tenant-scoped facade over the shared fleet spare pool.

    The elastic controller calls the pool with the single-job signature;
    the view injects the tenant tag on the way in and filters arrivals
    on the way out, so controllers stay oblivious to sharing.
    """

    def __init__(self, pool: SparePool, tenant: str):
        self.pool = pool
        self.tenant = tenant

    @property
    def remaining(self) -> int | None:
        return self.pool.remaining

    def request(self, rank: int, sim_time: float, rng=None):
        return self.pool.request(rank, sim_time, rng=rng, tenant=self.tenant)

    def ready_before(self, sim_time: float) -> list[SpareRequest]:
        return self.pool.ready_before(sim_time, tenant=self.tenant)

    def requeue(self, request: SpareRequest) -> None:
        self.pool.requeue(request)

    def restock(self, count: int) -> None:
        self.pool.restock(count)


class TenantRuntime:
    """Everything one admitted tenant runs and the fleet audits."""

    def __init__(
        self,
        spec: TenantSpec,
        pool: SparePool,
        slots: list[int],
        submitted_at: float,
        admitted_at: float,
    ):
        self.spec = spec
        self.slots = dict(enumerate(slots))  # rank -> fleet slot
        self.submitted_at = submitted_at
        self.admitted_at = admitted_at
        self.state = "running"  # running | completed | killed | stalled
        self.outcome_detail = ""
        self.job = TrainingJob.create(
            model=spec.model,
            cluster=ClusterSpec(
                num_nodes=spec.nodes,
                gpus_per_node=spec.gpus_per_node,
                nodes_per_rack=min(2, spec.nodes),
            ),
            strategy=ParallelismSpec(
                tensor_parallel=spec.tensor_parallel,
                pipeline_parallel=spec.pipeline_parallel,
            ),
            scale=spec.scale,
            seed=spec.seed,
        )
        self.engine = ECCheckEngine(
            self.job, ECCheckConfig(k=spec.k, m=spec.m, encode_threads=2)
        )
        tier_policy = (
            TierPolicy(
                memory_versions=spec.tier_memory_versions, disk_versions=4
            )
            if spec.tier_memory_versions
            else None
        )
        self.manager = CheckpointManager(
            self.job,
            self.engine,
            interval=spec.interval,
            remote_backup_every=spec.remote_backup_every,
            remote_backup_keep=2 if spec.remote_backup_every else 0,
            tier_policy=tier_policy,
        )
        self.controller = ElasticClusterController(
            self.manager,
            TenantSpareView(pool, spec.name),
            policy=RedundancyPolicy(repair_window_s=900.0, max_m=3),
            redundancy_floor=spec.redundancy_floor,
            rng=np.random.default_rng(spec.seed),
        )
        self.harness = DifferentialHarness(self.engine, label=spec.name)
        self.driver = None  # attached by the scheduler
        self.version_states: dict[int, dict] = {}
        self.version_iteration: dict[int, int] = {}
        self._drained_saves = 0
        self.failure_events = 0
        self.refused_events = 0
        self.cold_refusals = 0

    # ------------------------------------------------------------------
    def record_saves(self) -> None:
        """Snapshot newly committed versions (bounded window)."""
        fresh = self.manager.stats.save_reports[self._drained_saves:]
        self._drained_saves = len(self.manager.stats.save_reports)
        for report in fresh:
            self.version_states.setdefault(
                report.version, self.job.snapshot_states()
            )
            self.version_iteration.setdefault(
                report.version,
                self.manager._checkpoint_iteration_of_version[report.version],
            )
        while len(self.version_states) > SNAPSHOT_WINDOW:
            oldest = min(self.version_states)
            del self.version_states[oldest]
            del self.version_iteration[oldest]

    def slots_of_ranks(self, ranks) -> list[int]:
        return sorted(self.slots[r] for r in ranks)

    def ranks_of_slots(self, slots: set[int]) -> set[int]:
        return {r for r, s in self.slots.items() if s in slots}

    def release(self) -> list[int]:
        """Drop heavy state at end of life; returns the leased slots."""
        slots = sorted(self.slots.values())
        self.job = None
        self.engine = None
        self.manager = None
        self.controller = None
        self.driver = None
        self.version_states = {}
        self.version_iteration = {}
        return slots

    # ------------------------------------------------------------------
    def slo(self) -> dict:
        """Per-tenant SLO record for the fleet report (deterministic)."""
        stats = self.manager.stats if self.manager is not None else None
        record = {
            "name": self.spec.name,
            "state": self.state,
            "outcome_detail": self.outcome_detail,
            "weight": self.spec.weight,
            "priority": self.spec.priority,
            "k": self.spec.k,
            "m": self.spec.m,
            "admission_wait_s": round(self.admitted_at - self.submitted_at, 9),
            "failure_events": self.failure_events,
            "refused_events": self.refused_events,
        }
        if stats is not None:
            record.update(
                {
                    "iterations_run": (
                        self.driver.iterations_run if self.driver else 0
                    ),
                    "final_iteration": self.job.iteration,
                    "checkpoints": stats.checkpoints,
                    "remote_backups": stats.remote_backups,
                    "recoveries": stats.recoveries,
                    "iterations_lost": stats.iterations_lost,
                    "degraded_seconds": round(stats.degraded_seconds, 9),
                    "time_to_full_redundancy": [
                        round(x, 9) for x in
                        (e["degraded_seconds"] for e in stats.redundancy_ledger)
                    ],
                    "replacements": stats.replacements,
                }
            )
        return record

"""End-to-end training goodput under failures.

The paper's motivation is wasted GPU time (178k GPU-hours on OPT-175B, a
failure every ~3 hours on Llama 3.1).  This module closes the loop: given
a checkpoint engine's measured save/recovery characteristics and a fleet
failure process, simulate a long training run and report *goodput* — the
fraction of wall-clock time spent on retained (not rolled-back) training.

Failures arriving within a configurable concurrency window are treated as
one incident (that is what "concurrent node failures" means operationally:
a second machine dies before the first incident is fully handled).  An
incident whose node set the engine survives costs an in-memory recovery
plus the work since the last checkpoint; an incident it cannot survive
falls back to remote storage, costing a far larger restore plus the work
since the last *remote backup*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import SimulationError
from repro.sim.failures import FailureEvent, poisson_failure_trace


@dataclass(frozen=True)
class EngineProfile:
    """What the goodput model needs to know about a checkpoint engine."""

    name: str
    stall_s: float                 # training stall per checkpoint
    checkpoint_time_s: float       # save-to-durable latency (min interval)
    memory_recovery_s: float       # in-memory recovery latency
    remote_recovery_s: float       # remote fallback latency
    survives: Callable[[set[int]], bool]  # failed node set -> recoverable?
    durable_every_checkpoint: bool = False  # base1/base2: every save is remote


@dataclass
class GoodputResult:
    """Outcome of one simulated training campaign."""

    engine: str
    duration_hours: float
    useful_hours: float
    lost_work_hours: float
    recovery_hours: float
    checkpoint_overhead_hours: float
    incidents: int
    memory_recoveries: int
    remote_recoveries: int

    @property
    def goodput(self) -> float:
        """Useful fraction of wall-clock time."""
        return self.useful_hours / self.duration_hours if self.duration_hours else 0.0


def simulate_goodput(
    profile: EngineProfile,
    num_nodes: int,
    mtbf_hours: float,
    duration_hours: float,
    iteration_s: float,
    checkpoint_interval_iters: int,
    rng: np.random.Generator,
    remote_backup_interval_s: float = 4 * 3600.0,
    concurrency_window_s: float = 60.0,
) -> GoodputResult:
    """Simulate a training campaign under a Poisson failure process.

    Args:
        profile: the engine's measured characteristics.
        num_nodes: fleet size.
        mtbf_hours: per-node mean time between failures.
        duration_hours: campaign length (wall clock).
        iteration_s: baseline iteration time.
        checkpoint_interval_iters: iterations between in-memory checkpoints
            (clamped up if the engine cannot sustain it).
        rng: randomness for the failure trace.
        remote_backup_interval_s: cadence of durable remote backups
            (ECCheck's step 4; base1/base2 are durable every checkpoint).
        concurrency_window_s: failures closer together than this form one
            multi-node incident.

    Raises:
        SimulationError: for non-positive shape parameters.
    """
    if iteration_s <= 0 or checkpoint_interval_iters < 1:
        raise SimulationError("iteration_s and checkpoint interval must be positive")
    if duration_hours <= 0:
        raise SimulationError("duration_hours must be positive")

    # The engine cannot checkpoint faster than its end-to-end latency.
    min_interval = max(1, int(np.ceil(profile.checkpoint_time_s / iteration_s)))
    interval = max(checkpoint_interval_iters, min_interval)
    interval_s = interval * iteration_s
    overhead_per_interval = profile.stall_s

    events = poisson_failure_trace(num_nodes, mtbf_hours, duration_hours, rng)
    incidents = _group_incidents(events, concurrency_window_s / 3600.0)

    useful_s = 0.0
    lost_s = 0.0
    recovery_s = 0.0
    overhead_s = 0.0
    memory_recoveries = 0
    remote_recoveries = 0

    cursor_h = 0.0
    progress_since_ckpt_s = 0.0
    progress_since_backup_s = 0.0
    for when_h, failed in incidents:
        span_s = (when_h - cursor_h) * 3600.0
        cursor_h = when_h
        # Training during the span: split into useful work + ckpt overhead.
        work_s = span_s / (1.0 + overhead_per_interval / interval_s)
        overhead_s += span_s - work_s
        useful_s += work_s
        progress_since_ckpt_s = (progress_since_ckpt_s + work_s) % interval_s
        progress_since_backup_s += work_s

        if profile.survives(failed):
            memory_recoveries += 1
            recovery_s += profile.memory_recovery_s
            lost_s += progress_since_ckpt_s
            useful_s -= progress_since_ckpt_s
            progress_since_ckpt_s = 0.0
        else:
            remote_recoveries += 1
            recovery_s += profile.remote_recovery_s
            rollback = (
                progress_since_ckpt_s
                if profile.durable_every_checkpoint
                else progress_since_backup_s % remote_backup_interval_s
            )
            lost_s += rollback
            useful_s -= rollback
            progress_since_ckpt_s = 0.0
            progress_since_backup_s = 0.0

    # Tail span after the last incident.
    span_s = (duration_hours - cursor_h) * 3600.0
    work_s = span_s / (1.0 + overhead_per_interval / interval_s)
    overhead_s += span_s - work_s
    useful_s += work_s

    # Recovery time eats into the campaign wall clock: renormalise by
    # extending the denominator rather than double-booking the timeline.
    total_s = duration_hours * 3600.0 + recovery_s
    return GoodputResult(
        engine=profile.name,
        duration_hours=total_s / 3600.0,
        useful_hours=max(0.0, useful_s) / 3600.0,
        lost_work_hours=lost_s / 3600.0,
        recovery_hours=recovery_s / 3600.0,
        checkpoint_overhead_hours=overhead_s / 3600.0,
        incidents=len(incidents),
        memory_recoveries=memory_recoveries,
        remote_recoveries=remote_recoveries,
    )


def _group_incidents(
    events: list[FailureEvent], window_hours: float
) -> list[tuple[float, set[int]]]:
    """Cluster failure events into multi-node incidents."""
    incidents: list[tuple[float, set[int]]] = []
    for event in events:
        if incidents and event.time - incidents[-1][0] <= window_hours:
            incidents[-1][1].add(event.node)
        else:
            incidents.append((event.time, {event.node}))
    return incidents

"""Failure injection: independent node failures and Poisson/MTBF traces.

The paper's fault-tolerance analysis (Eqns. 1-2, Figs. 3 and 15) assumes
independent node failures with probability ``p`` per checkpoint window —
the standard assumption from large-scale availability studies it cites.
This module samples exactly that, plus time-stamped Poisson failure traces
in the style of the Llama-3.1 outage statistics (one failure every ~3 hours
across the fleet) for end-to-end training simulations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError


def sample_node_failures(
    num_nodes: int, p: float, rng: np.random.Generator
) -> set[int]:
    """Sample the set of nodes that fail, each independently with prob ``p``.

    Raises:
        SimulationError: if ``p`` is outside [0, 1].
    """
    if not 0.0 <= p <= 1.0:
        raise SimulationError(f"failure probability must be in [0, 1], got {p}")
    draws = rng.random(num_nodes)
    return {int(i) for i in np.nonzero(draws < p)[0]}


@dataclass(frozen=True)
class FailureEvent:
    """One node failure at a point in simulated time."""

    time: float
    node: int


def poisson_failure_trace(
    num_nodes: int,
    mtbf_hours: float,
    duration_hours: float,
    rng: np.random.Generator,
) -> list[FailureEvent]:
    """Generate a fleet failure trace with exponential inter-arrival times.

    Args:
        num_nodes: fleet size; each event picks a uniform random node.
        mtbf_hours: mean time between failures *per node* in hours.
        duration_hours: trace length.
        rng: numpy random generator.

    Returns:
        Time-ordered failure events (times in hours).

    Raises:
        SimulationError: for non-positive MTBF or duration.
    """
    if mtbf_hours <= 0:
        raise SimulationError(f"mtbf_hours must be positive, got {mtbf_hours}")
    if duration_hours <= 0:
        raise SimulationError(f"duration_hours must be positive, got {duration_hours}")
    fleet_rate = num_nodes / mtbf_hours  # failures per hour across the fleet
    events: list[FailureEvent] = []
    t = 0.0
    while True:
        t += rng.exponential(1.0 / fleet_rate)
        if t >= duration_hours:
            break
        events.append(FailureEvent(time=t, node=int(rng.integers(num_nodes))))
    return events


def concurrent_failure_counts(
    events: list[FailureEvent],
    window_hours: float,
    duration_hours: float | None = None,
) -> list[int]:
    """Number of failures landing in each ``window_hours`` bucket.

    Used to study how often multiple failures hit within one checkpoint
    interval — the case that separates erasure coding from replication.

    Args:
        events: time-ordered failure events (times in hours).
        window_hours: bucket width.
        duration_hours: trace length.  When given, the returned list covers
            the whole trace — including the quiet tail after the last
            failure — so window statistics (e.g. the fraction of zero-
            failure windows) are unbiased.  Without it the horizon is
            inferred from the last event, which silently drops trailing
            zero-count windows and returns ``[]`` for an event-free trace.

    Raises:
        SimulationError: on a non-positive window or duration, or an
            event falling outside ``duration_hours``.
    """
    if window_hours <= 0:
        raise SimulationError(f"window_hours must be positive, got {window_hours}")
    if duration_hours is None:
        if not events:
            return []
        buckets = int(max(e.time for e in events) / window_hours) + 1
    else:
        if duration_hours <= 0:
            raise SimulationError(
                f"duration_hours must be positive, got {duration_hours}"
            )
        last = max((e.time for e in events), default=0.0)
        if last >= duration_hours:
            raise SimulationError(
                f"event at t={last} falls outside duration_hours={duration_hours}"
            )
        # ceil: a partial final window still gets a bucket.
        buckets = max(1, int(-(-duration_hours // window_hours)))
    counts = [0] * buckets
    for event in events:
        counts[int(event.time / window_hours)] += 1
    return counts


@dataclass(frozen=True)
class DomainFailureEvent:
    """One failure of a whole domain (or a single node) at ``time`` hours.

    ``kind`` names the failure domain class (``"node"``, ``"rack"``,
    ``"switch"``, ``"power"``, ...); ``index`` is the domain's index
    within that class.  The fleet topology maps ``(kind, index)`` to the
    set of machine slots the event takes down.
    """

    time: float
    kind: str
    index: int


def domain_failure_trace(
    domain_counts: dict[str, int],
    mtbf_hours: dict[str, float],
    duration_hours: float,
    rng: np.random.Generator,
) -> list[DomainFailureEvent]:
    """Poisson failure trace over correlated failure domains.

    Real fleets lose machines one at a time *and* in correlated bursts:
    a rack PDU trips, a ToR switch dies, a power feed browns out — one
    event takes down every machine in the domain, across every tenant
    scheduled onto it.  Each domain class gets an independent Poisson
    process (rate = domains / MTBF-per-domain); the merged process is
    sampled directly: exponential inter-arrivals at the total rate, each
    event assigned a class by rate share and a uniform domain index.

    Args:
        domain_counts: domain class -> number of domains (e.g.
            ``{"node": 64, "rack": 16, "switch": 8, "power": 4}``).
        mtbf_hours: domain class -> MTBF per domain; classes absent from
            either mapping (or with a zero/None count) produce no events.
        duration_hours: trace length.
        rng: numpy random generator.

    Returns:
        Time-ordered domain failure events (times in hours).

    Raises:
        SimulationError: for a non-positive duration, count, or MTBF.
    """
    if duration_hours <= 0:
        raise SimulationError(
            f"duration_hours must be positive, got {duration_hours}"
        )
    rates: list[tuple[str, int, float]] = []
    for kind in sorted(set(domain_counts) & set(mtbf_hours)):
        count = domain_counts[kind]
        mtbf = mtbf_hours[kind]
        if not count or mtbf is None:
            continue
        if count < 0:
            raise SimulationError(f"{kind} count must be >= 0, got {count}")
        if mtbf <= 0:
            raise SimulationError(f"{kind} MTBF must be positive, got {mtbf}")
        rates.append((kind, count, count / mtbf))
    total_rate = sum(rate for _, _, rate in rates)
    if total_rate == 0:
        return []
    shares = np.array([rate for _, _, rate in rates]) / total_rate
    events: list[DomainFailureEvent] = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / total_rate))
        if t >= duration_hours:
            break
        which = int(rng.choice(len(rates), p=shares))
        kind, count, _ = rates[which]
        events.append(
            DomainFailureEvent(
                time=t, kind=kind, index=int(rng.integers(count))
            )
        )
    return events


def sample_correlated_failures(
    cluster,
    p_node: float,
    p_rack: float,
    rng: np.random.Generator,
) -> set[int]:
    """Sample node failures with rack-level correlation.

    Each node fails independently with ``p_node``; additionally each rack
    (shared switch/power domain) fails with ``p_rack``, taking down every
    node in it — the correlated failure mode that motivates rack-aware
    group placement.

    Args:
        cluster: a :class:`~repro.parallel.topology.ClusterSpec` (its
            ``nodes_per_rack`` defines the correlation domains).
        p_node: independent per-node failure probability.
        p_rack: whole-rack failure probability.
        rng: numpy random generator.

    Raises:
        SimulationError: if probabilities are outside [0, 1].
    """
    for name, p in (("p_node", p_node), ("p_rack", p_rack)):
        if not 0.0 <= p <= 1.0:
            raise SimulationError(f"{name} must be in [0, 1], got {p}")
    failed = sample_node_failures(cluster.num_nodes, p_node, rng)
    rack_draws = rng.random(cluster.num_racks)
    for rack in np.nonzero(rack_draws < p_rack)[0]:
        failed.update(cluster.nodes_of_rack(int(rack)))
    return failed

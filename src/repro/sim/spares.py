"""Spare-machine provisioning: replacement delays and pool exhaustion.

Production clusters replace a failed machine from a finite spare pool,
after a provisioning delay (reimage, rejoin fabric, warm caches).  The
elastic controller's degraded window is exactly the interval between a
failure and the moment the spare's chunks are repaired, so the delay
distribution and pool size drive ``time_to_full_redundancy``.

Delays are sampled log-normally — provisioning is a multiplicative chain
of steps (boot x image pull x health checks), the textbook log-normal
generator — with an optional exhaustion regime: when the pool is empty,
requests queue until a restock.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError


def sample_replacement_delay(
    rng: np.random.Generator,
    median_s: float = 600.0,
    sigma: float = 0.5,
) -> float:
    """One provisioning delay in seconds, log-normal around ``median_s``.

    Raises:
        SimulationError: for a non-positive median or negative sigma.
    """
    if median_s <= 0:
        raise SimulationError(f"median_s must be positive, got {median_s}")
    if sigma < 0:
        raise SimulationError(f"sigma must be >= 0, got {sigma}")
    return float(np.exp(np.log(median_s) + sigma * rng.standard_normal()))


@dataclass
class SpareRequest:
    """A pending replacement for ``rank``, arriving at ``ready_at``."""

    rank: int
    requested_at: float
    ready_at: float


@dataclass
class SparePool:
    """A finite pool of replacement machines with provisioning delay.

    Args:
        size: spares available (``None`` = unlimited).
        median_delay_s: median provisioning delay.
        sigma: log-normal shape of the delay.

    The pool is driven in simulated time: :meth:`request` reserves a
    spare (or refuses when exhausted), :meth:`ready_before` yields the
    requests whose provisioning completed by a given time.
    """

    size: int | None = None
    median_delay_s: float = 600.0
    sigma: float = 0.5
    pending: list[SpareRequest] = field(default_factory=list)
    dispensed: int = 0
    refused: int = 0

    def __post_init__(self) -> None:
        if self.size is not None and self.size < 0:
            raise SimulationError(f"pool size must be >= 0, got {self.size}")

    @property
    def remaining(self) -> int | None:
        """Spares left (None = unlimited)."""
        if self.size is None:
            return None
        return self.size - self.dispensed

    def request(
        self, rank: int, sim_time: float, rng: np.random.Generator
    ) -> SpareRequest | None:
        """Reserve a spare for ``rank``; None when the pool is exhausted."""
        if self.size is not None and self.dispensed >= self.size:
            self.refused += 1
            return None
        delay = sample_replacement_delay(rng, self.median_delay_s, self.sigma)
        req = SpareRequest(
            rank=rank, requested_at=sim_time, ready_at=sim_time + delay
        )
        self.dispensed += 1
        self.pending.append(req)
        return req

    def ready_before(self, sim_time: float) -> list[SpareRequest]:
        """Pop every pending request whose spare is provisioned by now."""
        ready = [r for r in self.pending if r.ready_at <= sim_time]
        self.pending = [r for r in self.pending if r.ready_at > sim_time]
        return sorted(ready, key=lambda r: r.ready_at)

    def requeue(self, request: SpareRequest) -> None:
        """Return a popped-but-unconsumed request to the pending queue.

        Used when the consumer crashed between popping a batch with
        :meth:`ready_before` and actually admitting every machine — the
        provisioned spares are not lost, they are still racked and ready.
        """
        self.pending.append(request)

    def restock(self, count: int) -> None:
        """Add spares back to a finite pool (no-op when unlimited).

        Raises:
            SimulationError: for a negative count.
        """
        if count < 0:
            raise SimulationError(f"restock count must be >= 0, got {count}")
        if self.size is not None:
            self.size += count

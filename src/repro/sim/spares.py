"""Spare-machine provisioning: replacement delays and pool exhaustion.

Production clusters replace a failed machine from a finite spare pool,
after a provisioning delay (reimage, rejoin fabric, warm caches).  The
elastic controller's degraded window is exactly the interval between a
failure and the moment the spare's chunks are repaired, so the delay
distribution and pool size drive ``time_to_full_redundancy``.

Delays are sampled log-normally — provisioning is a multiplicative chain
of steps (boot x image pull x health checks), the textbook log-normal
generator — with an optional exhaustion regime: when the pool is empty,
requests queue until a restock.

The pool can be *fleet-wide*: many tenants' controllers draw from one
inventory.  That sharing imposes two discipline rules this module
guarantees:

* the delay sample is drawn **lazily, on successful grant only** — a
  refused or queued request must not perturb the rng stream other
  tenants' grants draw from (the stream-stability test pins this);
* requests are tagged with their tenant so :meth:`SparePool.ready_before`
  can hand each controller only its own machines, and queued requests
  are promoted strictly FIFO at restock time with the wait recorded in
  the starvation ledger.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError


def sample_replacement_delay(
    rng: np.random.Generator,
    median_s: float = 600.0,
    sigma: float = 0.5,
) -> float:
    """One provisioning delay in seconds, log-normal around ``median_s``.

    Raises:
        SimulationError: for a non-positive median or negative sigma.
    """
    if median_s <= 0:
        raise SimulationError(f"median_s must be positive, got {median_s}")
    if sigma < 0:
        raise SimulationError(f"sigma must be >= 0, got {sigma}")
    return float(np.exp(np.log(median_s) + sigma * rng.standard_normal()))


@dataclass
class SpareRequest:
    """A pending replacement for ``rank``, arriving at ``ready_at``.

    ``tenant`` identifies the requesting job on a shared fleet pool
    (None for single-job pools); ``requested_at`` keeps the *original*
    request time even when the grant was delayed by an exhausted pool,
    so waits are measured from first ask.
    """

    rank: int
    requested_at: float
    ready_at: float
    tenant: str | None = None


@dataclass
class SpareWaiter:
    """A request parked by an exhausted pool, awaiting a restock."""

    rank: int
    requested_at: float
    tenant: str | None = None


@dataclass
class SparePool:
    """A finite pool of replacement machines with provisioning delay.

    Args:
        size: spares available (``None`` = unlimited).
        median_delay_s: median provisioning delay.
        sigma: log-normal shape of the delay.
        rng: when set, the pool owns its delay stream and ignores any
            generator passed to :meth:`request` — required for a shared
            fleet pool, where per-tenant generators would make the delay
            sequence depend on grant interleaving.
        queue_when_exhausted: park requests hitting an empty pool on a
            FIFO waitlist instead of refusing; :meth:`restock` promotes
            waiters (recording the starvation wait) as inventory returns.

    The pool is driven in simulated time: :meth:`request` reserves a
    spare (or refuses/queues when exhausted), :meth:`ready_before` yields
    the requests whose provisioning completed by a given time.

    Delay samples are drawn lazily on successful grant only: a refused or
    queued request leaves the rng stream untouched.
    """

    size: int | None = None
    median_delay_s: float = 600.0
    sigma: float = 0.5
    pending: list[SpareRequest] = field(default_factory=list)
    dispensed: int = 0
    refused: int = 0
    rng: np.random.Generator | None = None
    queue_when_exhausted: bool = False
    waiting: list[SpareWaiter] = field(default_factory=list)
    #: One entry per queued-then-granted request: ``{"tenant", "rank",
    #: "requested_at", "granted_at", "queued_s"}`` — the fleet's
    #: starvation accounting.
    starvation_ledger: list[dict] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.size is not None and self.size < 0:
            raise SimulationError(f"pool size must be >= 0, got {self.size}")

    @property
    def remaining(self) -> int | None:
        """Spares left (None = unlimited)."""
        if self.size is None:
            return None
        return self.size - self.dispensed

    @property
    def exhausted(self) -> bool:
        return self.size is not None and self.dispensed >= self.size

    def _grant(
        self, rank: int, requested_at: float, granted_at: float,
        rng: np.random.Generator, tenant: str | None,
    ) -> SpareRequest:
        delay = sample_replacement_delay(rng, self.median_delay_s, self.sigma)
        req = SpareRequest(
            rank=rank,
            requested_at=requested_at,
            ready_at=granted_at + delay,
            tenant=tenant,
        )
        self.dispensed += 1
        self.pending.append(req)
        return req

    def request(
        self,
        rank: int,
        sim_time: float,
        rng: np.random.Generator | None = None,
        tenant: str | None = None,
    ) -> SpareRequest | None:
        """Reserve a spare for ``rank``; None when the pool is exhausted.

        An exhausted pool either refuses (default) or — with
        ``queue_when_exhausted`` — parks the request until a restock.
        Both paths return None and, crucially, draw nothing from the rng.

        Raises:
            SimulationError: when no generator is available (neither a
                pool-owned one nor a per-call one).
        """
        source = self.rng if self.rng is not None else rng
        if self.exhausted:
            if self.queue_when_exhausted:
                self.waiting.append(
                    SpareWaiter(rank=rank, requested_at=sim_time, tenant=tenant)
                )
            else:
                self.refused += 1
            return None
        if source is None:
            raise SimulationError(
                "SparePool.request needs an rng (pool-owned or per-call)"
            )
        return self._grant(rank, sim_time, sim_time, source, tenant)

    def ready_before(
        self, sim_time: float, tenant: str | None = None
    ) -> list[SpareRequest]:
        """Pop every pending request whose spare is provisioned by now.

        With ``tenant`` given, only that tenant's requests are popped —
        a shared pool hands each controller its own machines only.
        """
        def mine(r: SpareRequest) -> bool:
            return tenant is None or r.tenant == tenant

        ready = [r for r in self.pending if r.ready_at <= sim_time and mine(r)]
        self.pending = [
            r for r in self.pending if r.ready_at > sim_time or not mine(r)
        ]
        return sorted(ready, key=lambda r: (r.ready_at, r.rank))

    def requeue(self, request: SpareRequest) -> None:
        """Return a popped-but-unconsumed request to the pending queue.

        Used when the consumer crashed between popping a batch with
        :meth:`ready_before` and actually admitting every machine — the
        provisioned spares are not lost, they are still racked and ready.
        """
        self.pending.append(request)

    def restock(
        self, count: int, sim_time: float | None = None
    ) -> list[SpareRequest]:
        """Add spares back to a finite pool (no-op when unlimited).

        When ``sim_time`` is given, parked waiters are promoted FIFO
        while inventory lasts: each gets a provisioning delay sampled
        *now* (the machine only starts provisioning once it exists) and
        its queue wait recorded in :attr:`starvation_ledger`.  Promotion
        needs a pool-owned rng.

        Returns:
            The promoted requests (empty without waiters or ``sim_time``).

        Raises:
            SimulationError: for a negative count, or waiters to promote
                without a pool-owned rng.
        """
        if count < 0:
            raise SimulationError(f"restock count must be >= 0, got {count}")
        if self.size is not None:
            self.size += count
        promoted: list[SpareRequest] = []
        if sim_time is None:
            return promoted
        while self.waiting and not self.exhausted:
            if self.rng is None:
                raise SimulationError(
                    "promoting queued spare requests needs a pool-owned rng"
                )
            waiter = self.waiting.pop(0)
            req = self._grant(
                waiter.rank, waiter.requested_at, sim_time, self.rng,
                waiter.tenant,
            )
            self.starvation_ledger.append(
                {
                    "tenant": waiter.tenant,
                    "rank": waiter.rank,
                    "requested_at": waiter.requested_at,
                    "granted_at": float(sim_time),
                    "queued_s": float(sim_time) - waiter.requested_at,
                }
            )
            promoted.append(req)
        return promoted

    def cancel_tenant(self, tenant: str) -> int:
        """Drop a finished tenant's parked waiters and restock its
        pending (granted but unconsumed) machines; returns the count
        returned to inventory."""
        self.waiting = [w for w in self.waiting if w.tenant != tenant]
        mine = [r for r in self.pending if r.tenant == tenant]
        self.pending = [r for r in self.pending if r.tenant != tenant]
        for _ in mine:
            self.dispensed -= 1
        return len(mine)

    def starvation_summary(self) -> dict[str, dict]:
        """Per-tenant queue-wait aggregates from the starvation ledger."""
        summary: dict[str, dict] = {}
        for entry in self.starvation_ledger:
            tenant = entry["tenant"] or "-"
            row = summary.setdefault(
                tenant, {"queued_grants": 0, "total_queued_s": 0.0,
                         "max_queued_s": 0.0}
            )
            row["queued_grants"] += 1
            row["total_queued_s"] += entry["queued_s"]
            row["max_queued_s"] = max(row["max_queued_s"], entry["queued_s"])
        return {k: summary[k] for k in sorted(summary)}

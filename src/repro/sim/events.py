"""A minimal discrete-event simulation engine.

Events are ``(time, sequence, callback)`` triples in a heap; callbacks may
schedule further events.  Handles support cancellation, which the network
layer uses to re-plan flow completions whenever bandwidth shares change.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

from repro.errors import SimulationError


class EventHandle:
    """Cancellable reference to a scheduled event."""

    __slots__ = ("cancelled",)

    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class Simulator:
    """Discrete-event loop with a monotonically advancing clock.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.schedule(2.0, lambda: fired.append(sim.now))
        >>> sim.run()
        >>> fired
        [2.0]
    """

    def __init__(self) -> None:
        self.now = 0.0
        self._queue: list[tuple[float, int, EventHandle, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self._processed = 0
        #: Optional ``(old_now, new_now)`` observer invoked before each clock
        #: advance.  Telemetry hangs off this hook instead of scheduling its
        #: own events so that ``processed``/``now`` — both serialized into
        #: reports — are untouched by observation.  The observer must not
        #: schedule events or mutate simulation state.
        self.on_advance: Callable[[float, float], None] | None = None

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Run ``callback`` ``delay`` seconds from now.

        Raises:
            SimulationError: if ``delay`` is negative (time travel).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        handle = EventHandle()
        heapq.heappush(
            self._queue, (self.now + delay, next(self._sequence), handle, callback)
        )
        return handle

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Run ``callback`` at an absolute simulation time."""
        return self.schedule(time - self.now, callback)

    def run(self, until: float | None = None) -> None:
        """Process events in order, optionally stopping at ``until``."""
        while self._queue:
            time, _, handle, callback = self._queue[0]
            if until is not None and time > until:
                if self.on_advance is not None and until > self.now:
                    self.on_advance(self.now, until)
                self.now = until
                return
            heapq.heappop(self._queue)
            if handle.cancelled:
                continue
            if self.on_advance is not None and time > self.now:
                self.on_advance(self.now, time)
            self.now = time
            self._processed += 1
            callback()
        if until is not None:
            if self.on_advance is not None and until > self.now:
                self.on_advance(self.now, until)
            self.now = max(self.now, until)

    @property
    def pending(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return len(self._queue)

    @property
    def processed(self) -> int:
        """Number of callbacks executed so far."""
        return self._processed

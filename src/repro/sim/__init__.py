"""Discrete-event cluster simulation.

The paper's evaluation machines (A100 nodes, 100 Gbps fabric, a 5 Gbps
remote store) are replaced by a flow-level network simulator:

* :mod:`repro.sim.events` — a minimal discrete-event engine.
* :mod:`repro.sim.network` — links with **max-min fair** bandwidth sharing
  (progressive filling), so e.g. sixteen workers pushing checkpoints into
  the 5 Gbps remote-storage pipe each get 1/16th of it, exactly the
  contention that makes remote checkpointing slow in the paper.
* :mod:`repro.sim.timeline` — a 1F1B pipeline-parallel training timeline
  that yields the inter-node busy intervals and the **idle slots** ECCheck
  schedules its checkpoint traffic into.
* :mod:`repro.sim.failures` — independent node-failure sampling and
  Poisson/MTBF failure traces for Monte-Carlo fault-tolerance experiments.
"""

from repro.sim.events import Simulator
from repro.sim.network import (
    ClusterNetwork,
    Flow,
    Network,
    TimeModel,
    TransferRequest,
    gbps,
)
from repro.sim.timeline import (
    IterationTimeline,
    Interval,
    intersect_intervals,
    pipeline_schedule_timeline,
)
from repro.sim.failures import (
    FailureEvent,
    concurrent_failure_counts,
    poisson_failure_trace,
    sample_correlated_failures,
    sample_node_failures,
)
from repro.sim.goodput import EngineProfile, GoodputResult, simulate_goodput

__all__ = [
    "Simulator",
    "ClusterNetwork",
    "Flow",
    "Network",
    "TimeModel",
    "TransferRequest",
    "gbps",
    "IterationTimeline",
    "Interval",
    "intersect_intervals",
    "pipeline_schedule_timeline",
    "FailureEvent",
    "concurrent_failure_counts",
    "poisson_failure_trace",
    "sample_correlated_failures",
    "sample_node_failures",
    "EngineProfile",
    "GoodputResult",
    "simulate_goodput",
]

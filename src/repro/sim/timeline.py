"""Training iteration timeline and network idle-slot extraction.

ECCheck schedules checkpoint communication into the network idle periods of
distributed training (Sec. IV-B3 of the paper).  This module produces those
periods from a pipeline-parallel schedule: stage ``s`` computes forward and
backward passes per microbatch, shipping activations forward and gradients
backward across stage boundaries.  The gaps between those transfers — the
pipeline "bubbles" — are the idle slots.

The schedule here is GPipe-style (all forwards, then all backwards), which
produces the same qualitative bubble structure the paper exploits; tensor
parallelism stays on intra-node NVLink and therefore leaves the inter-node
NICs idle during TP collectives, which the model reflects by simply not
generating inter-node traffic for TP.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.sim.network import TimeModel, gbps


@dataclass(frozen=True)
class Interval:
    """A half-open time interval [start, end)."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise SimulationError(f"interval ends before it starts: {self}")

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlaps(self, other: "Interval") -> bool:
        return self.start < other.end and other.start < self.end


def merge_intervals(intervals: list[Interval]) -> list[Interval]:
    """Union of intervals as a sorted, disjoint list."""
    if not intervals:
        return []
    ordered = sorted(intervals, key=lambda i: i.start)
    merged = [ordered[0]]
    for interval in ordered[1:]:
        last = merged[-1]
        if interval.start <= last.end:
            merged[-1] = Interval(last.start, max(last.end, interval.end))
        else:
            merged.append(interval)
    return merged


def complement_intervals(
    intervals: list[Interval], window: Interval
) -> list[Interval]:
    """Gaps of ``window`` not covered by ``intervals``."""
    out: list[Interval] = []
    cursor = window.start
    for interval in merge_intervals(intervals):
        if interval.end <= window.start or interval.start >= window.end:
            continue
        if interval.start > cursor:
            out.append(Interval(cursor, min(interval.start, window.end)))
        cursor = max(cursor, interval.end)
    if cursor < window.end:
        out.append(Interval(cursor, window.end))
    return out


def total_duration(intervals: list[Interval]) -> float:
    """Summed length of a disjoint (or merged) interval list."""
    return sum(i.duration for i in merge_intervals(intervals))


def intersect_intervals(
    a: list[Interval], b: list[Interval]
) -> list[Interval]:
    """Pairwise intersection of two interval sets, merged and sorted.

    The returned list covers exactly the time present in *both* inputs —
    e.g. checkpoint traffic windows that collide with NIC-busy training
    windows.  Either input may be unmerged or unsorted.
    """
    left = merge_intervals(a)
    right = merge_intervals(b)
    out: list[Interval] = []
    i = j = 0
    while i < len(left) and j < len(right):
        start = max(left[i].start, right[j].start)
        end = min(left[i].end, right[j].end)
        if start < end:
            out.append(Interval(start, end))
        if left[i].end <= right[j].end:
            i += 1
        else:
            j += 1
    return out


@dataclass
class IterationTimeline:
    """Busy/idle structure of one training iteration.

    Attributes:
        iteration_time: end-to-end iteration duration in seconds.
        stage_busy: per pipeline stage, the merged intervals during which
            that stage's node NIC carries training traffic.
    """

    iteration_time: float
    stage_busy: dict[int, list[Interval]] = field(default_factory=dict)

    def busy_intervals(self, stage: int) -> list[Interval]:
        """Merged NIC-busy intervals of a stage's node."""
        return merge_intervals(self.stage_busy.get(stage, []))

    def idle_slots(self, stage: int) -> list[Interval]:
        """NIC-idle intervals of a stage's node within the iteration."""
        return complement_intervals(
            self.busy_intervals(stage), Interval(0.0, self.iteration_time)
        )

    def idle_fraction(self, stage: int) -> float:
        """Fraction of the iteration the stage's NIC sits idle."""
        if self.iteration_time <= 0:
            return 0.0
        return total_duration(self.idle_slots(stage)) / self.iteration_time

    def min_idle_seconds(self) -> float:
        """Idle seconds of the busiest stage (the scheduling bottleneck)."""
        if not self.stage_busy:
            return self.iteration_time
        return min(
            total_duration(self.idle_slots(stage)) for stage in self.stage_busy
        )


def pipeline_schedule_timeline(
    stages: int,
    microbatches: int,
    forward_time: float,
    activation_bytes: float,
    time_model: TimeModel | None = None,
    backward_factor: float = 2.0,
) -> IterationTimeline:
    """Build an iteration timeline for a pipeline-parallel job.

    Args:
        stages: pipeline depth (one stage per node, as in the paper).
        microbatches: microbatches per iteration.
        forward_time: forward compute time of one microbatch on one stage.
        activation_bytes: bytes shipped across one stage boundary per
            microbatch (gradients are modelled at the same size).
        time_model: bandwidth constants (defaults to the testbed model).
        backward_factor: backward/forward compute ratio (~2 in practice).

    Returns:
        An :class:`IterationTimeline` with per-stage NIC busy intervals.

    Raises:
        SimulationError: for non-positive shape parameters.
    """
    if stages < 1 or microbatches < 1:
        raise SimulationError("stages and microbatches must be >= 1")
    if forward_time <= 0:
        raise SimulationError("forward_time must be positive")
    tm = time_model or TimeModel()
    comm_time = activation_bytes / gbps(tm.inter_node_gbps)
    backward_time = backward_factor * forward_time

    # GPipe schedule: forwards in dependency order, then backwards.
    f_end = [[0.0] * microbatches for _ in range(stages)]
    stage_free = [0.0] * stages
    arrivals = [[0.0] * microbatches for _ in range(stages)]
    busy: dict[int, list[Interval]] = {s: [] for s in range(stages)}

    for m in range(microbatches):
        for s in range(stages):
            start = max(stage_free[s], arrivals[s][m])
            end = start + forward_time
            f_end[s][m] = end
            stage_free[s] = end
            if s + 1 < stages:
                arrivals[s + 1][m] = end + comm_time
                if comm_time > 0:
                    transfer = Interval(end, end + comm_time)
                    busy[s].append(transfer)
                    busy[s + 1].append(transfer)

    # Backwards: last stage first, reverse microbatch order.
    b_arrivals = [[0.0] * microbatches for _ in range(stages)]
    for m in range(microbatches):
        b_arrivals[stages - 1][m] = f_end[stages - 1][microbatches - 1]
    for m in reversed(range(microbatches)):
        for s in reversed(range(stages)):
            start = max(stage_free[s], b_arrivals[s][m])
            end = start + backward_time
            stage_free[s] = end
            if s > 0:
                b_arrivals[s - 1][m] = max(b_arrivals[s - 1][m], end + comm_time)
                if comm_time > 0:
                    transfer = Interval(end, end + comm_time)
                    busy[s].append(transfer)
                    busy[s - 1].append(transfer)

    iteration_time = max(stage_free)
    return IterationTimeline(
        iteration_time=iteration_time,
        stage_busy={s: merge_intervals(v) for s, v in busy.items()},
    )

"""Flow-level network simulation with max-min fair bandwidth sharing.

Transfers are fluid flows over one or more links.  Whenever a flow starts
or finishes, rates are recomputed by *progressive filling* (the classic
max-min fairness algorithm): repeatedly saturate the most contended link,
freeze its flows at the fair share, and continue with the residual network.
This captures the two contention effects the paper's evaluation hinges on:

* every worker pushing a checkpoint shard into remote storage shares the
  storage's small aggregate bandwidth (base1/base2's bottleneck), and
* checkpoint traffic between nodes shares each node's NIC with other
  checkpoint flows (and, without idle-slot scheduling, with training
  traffic).

:class:`TimeModel` collects the calibrated constants (bandwidths and CPU
throughputs).  Defaults follow the paper's testbed: 100 Gbps inter-node
links, 5 Gbps aggregate to remote storage, PCIe-4 DtoH, and the ~40 Gbps
CPU erasure-coding throughput the paper cites as achievable.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.sim.events import EventHandle, Simulator


def gbps(value: float) -> float:
    """Convert gigabits/second to bytes/second."""
    return value * 1e9 / 8.0


@dataclass(frozen=True)
class TimeModel:
    """Calibrated bandwidths and throughputs of the simulated testbed.

    All ``*_gbps`` values are gigabits per second.  CPU-side throughputs
    are per worker process unless stated otherwise.

    Attributes:
        dtoh_gbps: GPU-to-host copy bandwidth per GPU (PCIe 4.0 x16).
        htod_gbps: host-to-GPU copy bandwidth per GPU (the restore-path
            direction; PCIe is symmetric so the default matches
            ``dtoh_gbps``, but pinned-memory setups can differ).
        nvlink_gbps: intra-node GPU interconnect bandwidth per node.
        inter_node_gbps: NIC bandwidth per node, full duplex (the paper's
            100 Gbps fabric).
        remote_storage_gbps: *aggregate* bandwidth from the whole cluster
            to persistent storage (the paper's 5 Gbps).
        serialize_gbps: torch.save-style serialization throughput.
        deserialize_gbps: checkpoint load/deserialization throughput.
        encode_gbps: erasure-coding throughput per worker with the thread
            pool enabled (paper cites > 40 Gbps as achievable on CPUs).
        encode_threads: threads in the encoding pool (throughput scales
            linearly below ``encode_gbps``).
        memcpy_gbps: host-memory copy throughput (buffer staging).
        disk_write_gbps: per-node local-NVMe write bandwidth (the
            demotion path of the tier stack; ~2 GB/s sustained).
        disk_read_gbps: per-node local-NVMe read bandwidth (the
            promotion/restore path; ~3.5 GB/s sustained).
        decompose_overhead_s: fixed per-save cost of analysing and
            decomposing the ``state_dict`` (step 1 bookkeeping).
    """

    dtoh_gbps: float = 128.0
    htod_gbps: float = 128.0
    nvlink_gbps: float = 1200.0
    inter_node_gbps: float = 100.0
    remote_storage_gbps: float = 5.0
    serialize_gbps: float = 8.0
    deserialize_gbps: float = 12.0
    encode_gbps: float = 40.0
    encode_threads: int = 4
    memcpy_gbps: float = 200.0
    disk_write_gbps: float = 16.0
    disk_read_gbps: float = 28.0
    decompose_overhead_s: float = 0.01

    # ------------------------------------------------------------------
    def dtoh_time(self, nbytes: int) -> float:
        """Seconds to copy ``nbytes`` from one GPU to host memory."""
        return nbytes / gbps(self.dtoh_gbps)

    def htod_time(self, nbytes: int) -> float:
        """Seconds to copy ``nbytes`` from host memory to one GPU."""
        return nbytes / gbps(self.htod_gbps)

    def serialize_time(self, nbytes: int) -> float:
        """Seconds for one worker to serialize ``nbytes`` of state."""
        return nbytes / gbps(self.serialize_gbps)

    def deserialize_time(self, nbytes: int) -> float:
        """Seconds for one worker to deserialize ``nbytes``."""
        return nbytes / gbps(self.deserialize_gbps)

    def encode_time(self, nbytes: int, threads: int | None = None) -> float:
        """Seconds to erasure-encode ``nbytes`` on one worker's CPU share."""
        threads = self.encode_threads if threads is None else threads
        effective = self.encode_gbps * min(1.0, threads / self.encode_threads)
        return nbytes / gbps(effective)

    def decode_time(self, nbytes: int) -> float:
        """Seconds to decode ``nbytes`` (same kernel as encoding)."""
        return self.encode_time(nbytes)

    def memcpy_time(self, nbytes: int) -> float:
        """Seconds for a host-memory buffer copy."""
        return nbytes / gbps(self.memcpy_gbps)

    def disk_write_time(self, nbytes: int) -> float:
        """Seconds to write ``nbytes`` to one node's local disk."""
        return nbytes / gbps(self.disk_write_gbps)

    def disk_read_time(self, nbytes: int) -> float:
        """Seconds to read ``nbytes`` from one node's local disk."""
        return nbytes / gbps(self.disk_read_gbps)

    def with_shared_bottleneck(
        self,
        remote_share: float = 1.0,
        inter_node_share: float = 1.0,
    ) -> "TimeModel":
        """Derive a model whose *shared* resources are scaled to a share.

        In a multi-tenant fleet the remote store's aggregate pipe and the
        cross-rack fabric are shared bottlenecks: an arbiter grants each
        tenant a fraction of them, and the tenant's transfers then run
        against a time model carrying only that fraction.  Node-local
        resources (PCIe, NVLink, disks, CPU throughputs) are unaffected —
        they are never shared across tenants.

        Args:
            remote_share: fraction of ``remote_storage_gbps`` granted.
            inter_node_share: fraction of ``inter_node_gbps`` granted
                (models cross-rack trunk contention).

        Raises:
            SimulationError: for a share outside ``(0, 1]``.
        """
        for name, share in (
            ("remote_share", remote_share),
            ("inter_node_share", inter_node_share),
        ):
            if not 0.0 < share <= 1.0:
                raise SimulationError(f"{name} must be in (0, 1], got {share}")
        if remote_share == 1.0 and inter_node_share == 1.0:
            return self
        return dataclasses.replace(
            self,
            remote_storage_gbps=self.remote_storage_gbps * remote_share,
            inter_node_gbps=self.inter_node_gbps * inter_node_share,
        )


# ---------------------------------------------------------------------------
# Flow-level simulation
# ---------------------------------------------------------------------------
@dataclass
class Link:
    """A capacity-constrained resource flows traverse."""

    name: str
    capacity: float  # bytes/second
    flows: set["Flow"] = field(default_factory=set)


class Flow:
    """One fluid transfer across a set of links."""

    __slots__ = (
        "links", "remaining", "nbytes", "rate", "start_time",
        "finish_time", "on_complete", "_completion",
    )

    def __init__(self, links: list[Link], nbytes: float, start_time: float, on_complete=None):
        self.links = links
        self.nbytes = float(nbytes)
        self.remaining = float(nbytes)
        self.rate = 0.0
        self.start_time = start_time
        self.finish_time: float | None = None
        self.on_complete = on_complete
        self._completion: EventHandle | None = None

    @property
    def done(self) -> bool:
        return self.finish_time is not None

    @property
    def duration(self) -> float:
        """Elapsed transfer time (only valid once the flow finished)."""
        if self.finish_time is None:
            raise SimulationError("flow has not finished")
        return self.finish_time - self.start_time


class Network:
    """Links plus max-min fair rate allocation, driven by a Simulator."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.links: dict[str, Link] = {}
        self._active: set[Flow] = set()
        self._last_update = 0.0

    def add_link(self, name: str, capacity_bytes_per_s: float) -> Link:
        """Register a link; capacities must be positive."""
        if capacity_bytes_per_s <= 0:
            raise SimulationError(f"link {name!r} needs positive capacity")
        if name in self.links:
            raise SimulationError(f"duplicate link {name!r}")
        link = Link(name=name, capacity=capacity_bytes_per_s)
        self.links[name] = link
        return link

    def start_flow(
        self, link_names: list[str], nbytes: float, on_complete=None
    ) -> Flow:
        """Begin a transfer over the named links (in-order route).

        Zero-byte flows complete immediately.
        """
        try:
            links = [self.links[name] for name in link_names]
        except KeyError as exc:
            raise SimulationError(f"unknown link {exc.args[0]!r}") from None
        if not links:
            raise SimulationError("a flow needs at least one link")
        flow = Flow(links, nbytes, self.sim.now, on_complete)
        if nbytes <= 0:
            flow.finish_time = self.sim.now
            if on_complete:
                on_complete(flow)
            return flow
        self._advance_to_now()
        self._active.add(flow)
        for link in links:
            link.flows.add(flow)
        self._reallocate()
        return flow

    # ------------------------------------------------------------------
    def _advance_to_now(self) -> None:
        """Drain bytes transferred since the last rate change."""
        dt = self.sim.now - self._last_update
        if dt > 0:
            for flow in self._active:
                flow.remaining = max(0.0, flow.remaining - flow.rate * dt)
        self._last_update = self.sim.now

    def _reallocate(self) -> None:
        """Progressive filling: recompute max-min fair rates, reschedule."""
        unfrozen = set(self._active)
        residual = {link.name: link.capacity for link in self.links.values()}
        for flow in self._active:
            if flow._completion is not None:
                flow._completion.cancel()
                flow._completion = None
            flow.rate = 0.0
        while unfrozen:
            # The bottleneck link is the one offering the smallest fair share.
            best_share = None
            bottleneck_flows: set[Flow] = set()
            for link in self.links.values():
                live = {f for f in link.flows if f in unfrozen}
                if not live:
                    continue
                share = residual[link.name] / len(live)
                if best_share is None or share < best_share:
                    best_share = share
                    bottleneck_flows = live
            if best_share is None:
                break
            for flow in bottleneck_flows:
                flow.rate = best_share
                for link in flow.links:
                    residual[link.name] = max(
                        0.0, residual[link.name] - best_share
                    )
                unfrozen.discard(flow)
        # Schedule each flow's completion at its new rate.
        for flow in self._active:
            if flow.rate <= 0:
                raise SimulationError(
                    f"flow over {[l.name for l in flow.links]} starved"
                )
            delay = flow.remaining / flow.rate
            flow._completion = self.sim.schedule(
                delay, lambda f=flow: self._complete(f)
            )

    def _complete(self, flow: Flow) -> None:
        self._advance_to_now()
        flow.remaining = 0.0
        flow.finish_time = self.sim.now
        self._active.discard(flow)
        for link in flow.links:
            link.flows.discard(flow)
        if self._active:
            self._reallocate()
        if flow.on_complete:
            flow.on_complete(flow)


# ---------------------------------------------------------------------------
# Cluster-shaped convenience wrapper
# ---------------------------------------------------------------------------
REMOTE = "remote"


@dataclass(frozen=True)
class TransferRequest:
    """One checkpoint transfer: node to node, node to/from remote storage.

    ``src``/``dst`` are node indices, or :data:`REMOTE` for the persistent
    store.  ``start_delay`` lets callers stagger flows (e.g. after a
    serialization phase of known length).
    """

    src: int | str
    dst: int | str
    nbytes: float
    start_delay: float = 0.0


class ClusterNetwork:
    """The testbed's network: per-node duplex NICs plus a shared remote pipe.

    Intra-node transfers ride the node's NVLink; inter-node transfers use
    the source's TX and destination's RX NIC links; remote transfers are
    additionally squeezed through the storage's aggregate link.
    """

    def __init__(self, num_nodes: int, time_model: TimeModel | None = None):
        if num_nodes < 1:
            raise SimulationError(f"num_nodes must be >= 1, got {num_nodes}")
        self.num_nodes = num_nodes
        self.time_model = time_model or TimeModel()

    def _build(self, sim: Simulator) -> Network:
        tm = self.time_model
        net = Network(sim)
        for node in range(self.num_nodes):
            net.add_link(f"node{node}.tx", gbps(tm.inter_node_gbps))
            net.add_link(f"node{node}.rx", gbps(tm.inter_node_gbps))
            net.add_link(f"node{node}.nvlink", gbps(tm.nvlink_gbps))
        net.add_link("remote.rx", gbps(tm.remote_storage_gbps))
        net.add_link("remote.tx", gbps(tm.remote_storage_gbps))
        return net

    def route(self, src: int | str, dst: int | str) -> list[str]:
        """Link names a transfer traverses.

        Raises:
            SimulationError: for out-of-range nodes or a remote-to-remote
                route.
        """
        if src == REMOTE and dst == REMOTE:
            raise SimulationError("remote-to-remote transfers are meaningless")
        if src == REMOTE:
            self._check_node(dst)
            return ["remote.tx", f"node{dst}.rx"]
        if dst == REMOTE:
            self._check_node(src)
            return [f"node{src}.tx", "remote.rx"]
        self._check_node(src)
        self._check_node(dst)
        if src == dst:
            return [f"node{src}.nvlink"]
        return [f"node{src}.tx", f"node{dst}.rx"]

    def _check_node(self, node: int | str) -> None:
        if not isinstance(node, int) or not 0 <= node < self.num_nodes:
            raise SimulationError(f"bad node {node!r}")

    def simulate(self, requests: list[TransferRequest]) -> "TransferResult":
        """Run all transfers to completion and report timings."""
        sim = Simulator()
        net = self._build(sim)
        flows: list[Flow] = []
        by_request: list[Flow | None] = [None] * len(requests)

        def launch(index: int, request: TransferRequest) -> None:
            flow = net.start_flow(
                self.route(request.src, request.dst), request.nbytes
            )
            flows.append(flow)
            by_request[index] = flow

        for index, request in enumerate(requests):
            sim.schedule(
                request.start_delay, lambda i=index, r=request: launch(i, r)
            )
        sim.run()
        makespan = max((f.finish_time for f in flows), default=0.0)
        return TransferResult(
            makespan=makespan,
            flow_finish_times=[f.finish_time for f in flows],
            total_bytes=sum(f.nbytes for f in flows),
            request_finish_times=[
                f.finish_time if f is not None else 0.0 for f in by_request
            ],
        )


# ---------------------------------------------------------------------------
# Admission-time arbitration of one shared fleet bottleneck
# ---------------------------------------------------------------------------
@dataclass
class BandwidthClaim:
    """One tenant's live claim on a shared bottleneck.

    ``fraction`` and ``rate`` are recomputed by the arbiter on every
    acquire/release, so a held claim always reflects the current mix.
    """

    name: str
    weight: float
    priority: int
    fraction: float = 0.0
    rate: float = 0.0  # bytes/second


class BandwidthArbiter:
    """Weighted fair-share / priority arbitration of one shared resource.

    The flow-level :class:`Network` resolves contention *within* one
    tenant's transfer phase; the arbiter resolves contention *between*
    tenants at admission time: each concurrent claimant is granted a
    fraction of the capacity, and its transfers then run against a
    :meth:`TimeModel.with_shared_bottleneck` model carrying that share.

    Two modes:

    * ``"fair"`` — grants are proportional to claim weights; with every
      weight equal this is plain max-min sharing.
    * ``"priority"`` — each priority level multiplies the effective
      weight by :data:`PRIORITY_BOOST`; higher levels dominate but lower
      levels keep a positive floor, so no claimant is starved outright
      (waits stay bounded).

    Invariants (the Hypothesis suite pins them):

    * granted rates never sum above capacity;
    * with any claims active the grants sum to exactly the capacity
      (work conservation — the arbiter rebalances on every change);
    * within one priority level, ``fraction_i / fraction_j ==
      weight_i / weight_j``.
    """

    PRIORITY_BOOST = 8.0

    def __init__(self, capacity: float, mode: str = "fair"):
        if capacity <= 0:
            raise SimulationError(f"capacity must be positive, got {capacity}")
        if mode not in ("fair", "priority"):
            raise SimulationError(f"unknown arbitration mode {mode!r}")
        self.capacity = float(capacity)
        self.mode = mode
        self.claims: dict[str, BandwidthClaim] = {}

    def _effective_weight(self, claim: BandwidthClaim) -> float:
        if self.mode == "priority":
            return claim.weight * self.PRIORITY_BOOST**claim.priority
        return claim.weight

    def _rebalance(self) -> None:
        total = sum(self._effective_weight(c) for c in self.claims.values())
        for claim in self.claims.values():
            claim.fraction = self._effective_weight(claim) / total
            claim.rate = self.capacity * claim.fraction

    def acquire(
        self, name: str, weight: float = 1.0, priority: int = 0
    ) -> BandwidthClaim:
        """Admit a claimant; returns its (live) claim.

        Raises:
            SimulationError: for a duplicate claimant, non-positive
                weight, or negative priority.
        """
        if name in self.claims:
            raise SimulationError(f"duplicate claim {name!r}")
        if weight <= 0:
            raise SimulationError(f"weight must be positive, got {weight}")
        if priority < 0:
            raise SimulationError(f"priority must be >= 0, got {priority}")
        claim = BandwidthClaim(name=name, weight=weight, priority=priority)
        self.claims[name] = claim
        self._rebalance()
        return claim

    def release(self, name: str) -> None:
        """Drop a claim and rebalance the survivors.

        Raises:
            SimulationError: for an unknown claimant.
        """
        if name not in self.claims:
            raise SimulationError(f"unknown claim {name!r}")
        del self.claims[name]
        if self.claims:
            self._rebalance()

    @property
    def allocated(self) -> float:
        """Sum of granted rates (== capacity when any claims are live)."""
        return sum(c.rate for c in self.claims.values())

    def fraction_of(self, name: str) -> float:
        """Current capacity fraction granted to ``name`` (1.0 if alone)."""
        if name not in self.claims:
            raise SimulationError(f"unknown claim {name!r}")
        return self.claims[name].fraction


@dataclass(frozen=True)
class TransferResult:
    """Outcome of a simulated transfer phase.

    ``flow_finish_times`` is ordered by flow *launch* (ascending start
    delay); ``request_finish_times`` is aligned with the request list the
    caller passed to :meth:`ClusterNetwork.simulate`, so per-request cost
    attribution does not depend on launch order.
    """

    makespan: float
    flow_finish_times: list[float]
    total_bytes: float
    request_finish_times: list[float] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Piggyback accounting: a replication flow riding the cross-rack trunk
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class PiggybackSlice:
    """One piggybacked transfer's share of the trunk while it was live."""

    seconds: float
    nbytes: int
    fraction: float  # trunk fraction granted to the replication flow
    rate: float  # bytes/second actually granted


class PiggybackChannel:
    """Gradient replication sharing the cross-rack trunk with collectives.

    Checkmate-style engines do not open a dedicated checkpoint network:
    the per-iteration gradient copy rides the same inter-node trunk the
    training collectives (all-reduce / pipeline sends) already saturate.
    This channel models that contention with a :class:`BandwidthArbiter`
    over the trunk capacity: a standing ``collective`` claim holds the
    training job's share, and each replicated payload acquires a
    transient ``replication`` claim, transfers at the granted rate, and
    releases.  Fully deterministic — no rng, no wall clock.

    Args:
        time_model: supplies the trunk capacity (``inter_node_gbps``).
        collective_weight: standing weight of the training collectives.
            With ``replication_weight=1.0`` the replication flow is
            granted ``1 / (1 + collective_weight)`` of the trunk — the
            default 3.0 leaves collectives 75% of the capacity.
        replication_weight: weight of each transient replication claim.
    """

    def __init__(
        self,
        time_model: "TimeModel",
        collective_weight: float = 3.0,
        replication_weight: float = 1.0,
    ):
        if collective_weight <= 0 or replication_weight <= 0:
            raise SimulationError(
                "piggyback weights must be positive, got "
                f"collective={collective_weight}, replication={replication_weight}"
            )
        self.time_model = time_model
        self.collective_weight = float(collective_weight)
        self.replication_weight = float(replication_weight)
        self.arbiter = BandwidthArbiter(gbps(time_model.inter_node_gbps))
        self.arbiter.acquire("collective", weight=self.collective_weight)
        self.total_seconds = 0.0
        self.total_bytes = 0
        self.transfers = 0

    @property
    def replication_fraction(self) -> float:
        """Trunk fraction a lone replication flow is granted."""
        return self.replication_weight / (
            self.replication_weight + self.collective_weight
        )

    def transfer(self, nbytes: int) -> PiggybackSlice:
        """Ship ``nbytes`` over the shared trunk; returns the time slice.

        Zero-byte transfers (a fully clean delta) cost nothing and do
        not touch the arbiter.
        """
        if nbytes < 0:
            raise SimulationError(f"nbytes must be >= 0, got {nbytes}")
        if nbytes == 0:
            return PiggybackSlice(seconds=0.0, nbytes=0, fraction=0.0, rate=0.0)
        claim = self.arbiter.acquire(
            "replication", weight=self.replication_weight
        )
        try:
            seconds = nbytes / claim.rate
            slice_ = PiggybackSlice(
                seconds=seconds,
                nbytes=int(nbytes),
                fraction=claim.fraction,
                rate=claim.rate,
            )
        finally:
            self.arbiter.release("replication")
        self.total_seconds += slice_.seconds
        self.total_bytes += slice_.nbytes
        self.transfers += 1
        return slice_
